"""Table I: Sioux Falls point-to-point measurements, both schemes.

Eight RSU pairs against node 10 (``n_y = 451k`` vehicles/day), sorted
by the traffic difference ratio ``d = n_y / n_x``; both schemes
measure each pair's point-to-point volume and the error ratio
``r = |n̂_c - n_c| / n_c`` is reported.

The paper's reading: both schemes are accurate when ``d`` is small
(~0.1% at ``d ≈ 2``), but the baseline's error grows by an order of
magnitude around ``d ≈ 4`` and two orders around ``d ≈ 16``, while the
VLM scheme stays flat.

Per DESIGN.md substitution #1, the per-pair ``(n_x, n_y, n_c)`` are
pinned to the paper's exact Table I values (the schemes consume
nothing else about the network), while the surrounding Sioux Falls
topology/trip context lives in the examples.  The paper prints one
simulation run per pair; since single-run errors are noisy at these
scales we run ``repetitions`` independent rounds per pair and report
the mean error ratio (raw per-round estimates are kept for
inspection), which is the fair shape comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baseline.scheme import FixedLengthScheme
from repro.core.sizing import fixed_array_size_for_privacy
from repro.core.estimator import ZeroFractionPolicy
from repro.core.scheme import VlmScheme
from repro.privacy.optimizer import max_load_factor_for_privacy
from repro.runtime import Task, run_tasks
from repro.traffic.population import VehicleFleet
from repro.traffic.scenarios import (
    TABLE1_N_Y,
    TABLE1_PAIRS,
    TABLE1_RSU_Y,
    Table1Pair,
)
from repro.utils.rng import SeedLike, as_generator, spawn_sequences
from repro.utils.tables import AsciiTable

__all__ = ["Table1Row", "Table1Result", "run_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One measured pair (mean over repetitions)."""

    rsu_x: int
    n_x: int
    n_c: int
    d: float
    vlm_estimate: float
    vlm_error: float
    baseline_estimate: float
    baseline_error: float
    vlm_estimates: Tuple[float, ...]
    baseline_estimates: Tuple[float, ...]
    #: Closed-form per-run relative stddev (Section V machinery), for
    #: judging whether an observed error is noise or systematic.
    vlm_stddev: float = float("nan")
    baseline_stddev: float = float("nan")

    @property
    def vlm_mean_run_error(self) -> float:
        """Mean per-run error ratio (more stable than the error of the
        mean estimate at few repetitions)."""
        return float(
            sum(abs(e - self.n_c) for e in self.vlm_estimates)
            / (self.n_c * len(self.vlm_estimates))
        )

    @property
    def baseline_mean_run_error(self) -> float:
        """Mean per-run error ratio of the baseline."""
        return float(
            sum(abs(e - self.n_c) for e in self.baseline_estimates)
            / (self.n_c * len(self.baseline_estimates))
        )


@dataclass(frozen=True)
class Table1Result:
    """The reproduced Table I."""

    rows: List[Table1Row]
    n_y: int
    s: int
    load_factor: float
    baseline_m: int
    repetitions: int

    def render(self) -> str:
        table = AsciiTable(
            [
                "R_x",
                "n_x",
                "d = n_y/n_x",
                "n_c",
                "n_c^ ([9])",
                "n_c^ (VLM)",
                "r ([9]) %",
                "r (VLM) %",
                "σ ([9]) %",
                "σ (VLM) %",
            ],
            title=(
                f"Table I — Sioux Falls, R_y = {TABLE1_RSU_Y}, n_y = {self.n_y:,}, "
                f"s = {self.s}, f̄ = {self.load_factor:.2f}, "
                f"baseline m = {self.baseline_m:,}, "
                f"mean over {self.repetitions} runs"
            ),
        )
        for row in self.rows:
            table.add_row(
                [
                    row.rsu_x,
                    row.n_x,
                    row.d,
                    row.n_c,
                    row.baseline_estimate,
                    row.vlm_estimate,
                    100.0 * row.baseline_error,
                    100.0 * row.vlm_error,
                    100.0 * row.baseline_stddev,
                    100.0 * row.vlm_stddev,
                ]
            )
        return table.render()


def _measure_pair(
    pair: Table1Pair,
    n_y: int,
    s: int,
    load_factor: float,
    baseline_m: int,
    repetitions: int,
    seed: np.random.SeedSequence,
) -> Table1Row:
    """Both schemes on one pair, averaged over repetitions.

    A runtime task: the pair's ``SeedSequence`` substream is split up
    front into one fleet stream and one hash-seed stream per
    repetition, so the row is independent of every other pair's
    execution (and of the executor running it).
    """
    n_x, n_c = pair.n_x, pair.n_c
    fleet_seed, *rep_seeds = spawn_sequences(seed, 1 + repetitions)
    fleet = VehicleFleet.random(n_x + n_y, seed=fleet_seed)
    ids_x, keys_x = fleet.ids[:n_x], fleet.keys[:n_x]
    ids_y = np.concatenate([fleet.ids[:n_c], fleet.ids[n_x : n_x + n_y - n_c]])
    keys_y = np.concatenate([fleet.keys[:n_c], fleet.keys[n_x : n_x + n_y - n_c]])
    vlm_estimates: List[float] = []
    base_estimates: List[float] = []
    for rep_seed in rep_seeds:
        hash_seed = int(as_generator(rep_seed).integers(2**63))
        vlm = VlmScheme(
            {pair.rsu_x: n_x, TABLE1_RSU_Y: n_y},
            s=s,
            load_factor=load_factor,
            hash_seed=hash_seed,
            policy=ZeroFractionPolicy.CLAMP,
        )
        rx = vlm.encode_rsu(pair.rsu_x, ids_x, keys_x)
        ry = vlm.encode_rsu(TABLE1_RSU_Y, ids_y, keys_y)
        vlm_estimates.append(vlm.measure(rx, ry).value)
        base = FixedLengthScheme(baseline_m, s=s, hash_seed=hash_seed)
        bx = base.encode_rsu(pair.rsu_x, ids_x, keys_x)
        by = base.encode_rsu(TABLE1_RSU_Y, ids_y, keys_y)
        base_estimates.append(base.measure(bx, by).value)
    vlm_mean = float(np.mean(vlm_estimates))
    base_mean = float(np.mean(base_estimates))
    from repro.accuracy.variance import estimator_stddev
    from repro.core.sizing import array_size_for_volume

    m_x = array_size_for_volume(n_x, load_factor)
    m_y = array_size_for_volume(n_y, load_factor)
    vlm_stddev = estimator_stddev(n_x, n_y, n_c, m_x, m_y, s)
    base_stddev = estimator_stddev(n_x, n_y, n_c, baseline_m, baseline_m, s)
    return Table1Row(
        rsu_x=pair.rsu_x,
        n_x=n_x,
        n_c=n_c,
        d=pair.traffic_difference_ratio,
        vlm_estimate=vlm_mean,
        vlm_error=abs(vlm_mean - n_c) / n_c,
        baseline_estimate=base_mean,
        baseline_error=abs(base_mean - n_c) / n_c,
        vlm_estimates=tuple(vlm_estimates),
        baseline_estimates=tuple(base_estimates),
        vlm_stddev=vlm_stddev,
        baseline_stddev=base_stddev,
    )


def run_table1(
    *,
    pairs: Sequence[Table1Pair] = TABLE1_PAIRS,
    s: int = 2,
    repetitions: int = 5,
    min_privacy: float = 0.5,
    seed: SeedLike = 1,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
) -> Table1Result:
    """Reproduce Table I.

    ``f̄`` and the baseline ``m`` are derived from the privacy floor
    exactly as the paper prescribes: the binding volume is the
    least-traffic RSU among all involved (node 3, 28k/day).  Pairs are
    measured as independent runtime tasks, one substream each — the
    result is bit-identical for any worker count and executor.
    """
    n_min = min(min(p.n_x for p in pairs), TABLE1_N_Y)
    load_factor = max_load_factor_for_privacy(
        min_privacy, s, n_x=n_min, n_y=n_min
    )
    volumes = [p.n_x for p in pairs] + [TABLE1_N_Y]
    baseline_m = fixed_array_size_for_privacy(
        volumes, s, min_privacy=min_privacy
    )
    rows = run_tasks(
        [
            Task(
                fn=_measure_pair,
                args=(
                    pair,
                    TABLE1_N_Y,
                    s,
                    load_factor,
                    baseline_m,
                    repetitions,
                    sub,
                ),
                label=f"table1:rsu{pair.rsu_x}",
            )
            for pair, sub in zip(pairs, spawn_sequences(seed, len(pairs)))
        ],
        workers=workers,
        executor=executor,
    )
    return Table1Result(
        rows=rows,
        n_y=TABLE1_N_Y,
        s=s,
        load_factor=load_factor,
        baseline_m=baseline_m,
        repetitions=repetitions,
    )

"""Calibration of the Fig. 2 common-traffic fraction (substitution #5).

The privacy formula (Eq. 43) needs ``n_c``, but Fig. 2 never states
the value used.  DESIGN.md substitution #5 fixes
``n_c = 0.1 · min(n_x, n_y)``; this experiment makes that choice
auditable: it sweeps the fraction and scores each candidate against
every quantitative reading the paper's text quotes, showing 0.1 is the
(essentially unique) simultaneous fit.

Paper readings scored (Section VI-B):

1. optimal privacy ≈ 0.75 at ``s = 5``, equal traffic;
2. privacy ≈ 0.89 at ``f̄ = 3, s = 5, n_y = 10 n_x``;
3. privacy ≈ 0.91 at ``f̄ = 3, s = 5, n_y = 50 n_x``;
4. privacy ≈ 0.2 at ``f = 50, s = 2``, equal traffic;
5. "m should be no larger than 15·n_min" for privacy ≥ 0.5 at s = 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.privacy.optimizer import (
    max_load_factor_for_privacy,
    optimal_load_factor,
    privacy_curve,
)
from repro.runtime import Task, run_tasks
from repro.utils.tables import AsciiTable

__all__ = ["CalibrationResult", "run_calibration"]

#: (label, paper value) for each scored reading.
PAPER_READINGS: Tuple[Tuple[str, float], ...] = (
    ("p* (s=5, equal)", 0.75),
    ("p(f=3, s=5, 10x)", 0.89),
    ("p(f=3, s=5, 50x)", 0.91),
    ("p(f=50, s=2, equal)", 0.20),
    ("max f for p>=0.5 (s=2)", 15.0),
)


@dataclass(frozen=True)
class CalibrationResult:
    """Fit of each candidate fraction against the paper's readings."""

    fractions: Sequence[float]
    readings: Dict[float, Tuple[float, ...]]
    scores: Dict[float, float]

    @property
    def best_fraction(self) -> float:
        """The fraction minimizing the total relative misfit."""
        return min(self.scores, key=self.scores.get)

    def render(self) -> str:
        table = AsciiTable(
            ["n_c fraction"]
            + [label for label, _ in PAPER_READINGS]
            + ["total misfit"],
            title=(
                "Calibration of Fig. 2's unstated n_c "
                "(paper readings in header parentheses below)"
            ),
        )
        table.add_row(
            ["(paper)"] + [value for _, value in PAPER_READINGS] + [None]
        )
        for fraction in self.fractions:
            table.add_row(
                [fraction]
                + list(self.readings[fraction])
                + [self.scores[fraction]]
            )
        return "\n".join(
            [
                table.render(),
                f"best simultaneous fit: n_c = {self.best_fraction:g} "
                "x min(n_x, n_y)  (the library default)",
            ]
        )


def _readings_for(fraction: float, n_x: float) -> Tuple[float, ...]:
    _, p_star = optimal_load_factor(5, n_x=n_x, n_y=n_x, common_fraction=fraction)
    p3_10 = float(
        privacy_curve(
            np.array([3.0]), 5, n_x=n_x, n_y=10 * n_x, common_fraction=fraction
        )[0]
    )
    p3_50 = float(
        privacy_curve(
            np.array([3.0]), 5, n_x=n_x, n_y=50 * n_x, common_fraction=fraction
        )[0]
    )
    p50 = float(
        privacy_curve(
            np.array([50.0]), 2, n_x=n_x, n_y=n_x, common_fraction=fraction
        )[0]
    )
    try:
        f_max = max_load_factor_for_privacy(
            0.5, 2, n_x=n_x, n_y=n_x, common_fraction=fraction
        )
    except Exception:
        f_max = float("nan")
    return (p_star, p3_10, p3_50, p50, f_max)


def run_calibration(
    *,
    fractions: Sequence[float] = (0.02, 0.05, 0.1, 0.2, 0.3),
    n_x: float = 10_000.0,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
) -> CalibrationResult:
    """Score each candidate fraction against the paper's readings.

    Entirely closed-form (no randomness): one runtime task per
    candidate fraction, trivially identical under any plan.
    """
    readings: Dict[float, Tuple[float, ...]] = {}
    scores: Dict[float, float] = {}
    targets = [value for _, value in PAPER_READINGS]
    all_values = run_tasks(
        [
            Task(
                fn=_readings_for,
                args=(fraction, n_x),
                label=f"calibration:{fraction:g}",
            )
            for fraction in fractions
        ],
        workers=workers,
        executor=executor,
    )
    for fraction, values in zip(fractions, all_values):
        readings[fraction] = values
        misfit = 0.0
        for value, target in zip(values, targets):
            if value != value:  # NaN: unreachable reading
                misfit += 10.0
            else:
                misfit += abs(value - target) / target
        scores[fraction] = misfit
    return CalibrationResult(
        fractions=tuple(fractions), readings=readings, scores=scores
    )

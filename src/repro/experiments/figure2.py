"""Figure 2: preserved privacy vs load factor.

Three plots, each showing privacy ``p`` against the load factor
``f ∈ [0.1, 50]`` for ``s ∈ {2, 5, 10}``:

1. ``n_y = n_x`` — identical for both schemes (equal sizes);
2. ``n_y = 10 n_x`` — the VLM scheme with variable-length arrays;
3. ``n_y = 50 n_x`` — same, wider gap.

The paper's headline readings, all reproduced by this runner (see
EXPERIMENTS.md): the optimum sits at ``f* ≈ 2-4``; at ``s=5`` the
optimal privacy is ≈0.75 (equal), ≈0.89 (10x), ≈0.91 (50x); a fixed-m
deployment that pushes a light RSU to ``f = 50`` at ``s=2`` drops its
privacy to ≈0.2; and ``m <= ~15 n_min`` keeps privacy ≥ 0.5 at
``s=2``.

Fig. 2 does not state its common-traffic fraction ``n_c``; we default
to ``n_c = 0.1 min(n_x, n_y)``, which calibrates all quoted readings
simultaneously (DESIGN.md substitution #5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.privacy.optimizer import (
    DEFAULT_COMMON_FRACTION,
    max_load_factor_for_privacy,
    optimal_load_factor,
    privacy_curve,
)
from repro.traffic.scenarios import S_VALUES, TRAFFIC_RATIOS
from repro.utils.tables import AsciiTable

__all__ = ["Figure2Result", "run_figure2"]


@dataclass(frozen=True)
class Figure2Result:
    """All three privacy plots plus the derived headline readings.

    ``curves[(ratio, s)]`` is the privacy series over ``load_factors``
    for the plot with ``n_y = ratio * n_x``; ``empirical`` holds
    simulated cross-check points ``(ratio, s, f) -> measured p`` when
    the runner was asked for them.
    """

    load_factors: np.ndarray
    curves: Dict[Tuple[int, int], np.ndarray]
    optima: Dict[Tuple[int, int], Tuple[float, float]]
    n_x: float
    common_fraction: float
    max_f_privacy_half_s2: float
    empirical: Dict[Tuple[int, int, float], float] = None

    def series(self, ratio: int, s: int) -> np.ndarray:
        """One plotted curve: privacy over the load-factor grid."""
        return self.curves[(ratio, s)]

    def render(self) -> str:
        """Text rendering of the three plots' key points."""
        parts: List[str] = []
        probe_points = (0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 25.0, 50.0)
        for ratio in sorted({r for r, _ in self.curves}):
            table = AsciiTable(
                ["f"] + [f"p (s={s})" for s in S_VALUES],
                title=(
                    f"Figure 2 — preserved privacy, n_y = {ratio} n_x "
                    f"(n_x = {self.n_x:g}, n_c = "
                    f"{self.common_fraction:g} min(n_x, n_y))"
                ),
            )
            for f in probe_points:
                idx = int(np.argmin(np.abs(self.load_factors - f)))
                table.add_row(
                    [self.load_factors[idx]]
                    + [float(self.curves[(ratio, s)][idx]) for s in S_VALUES]
                )
            parts.append(table.render())
            optima = ", ".join(
                f"s={s}: f*={self.optima[(ratio, s)][0]:.2f} "
                f"p*={self.optima[(ratio, s)][1]:.3f}"
                for s in S_VALUES
            )
            parts.append(f"optima: {optima}")
        parts.append(
            "largest f with p >= 0.5 at s=2 (equal traffic): "
            f"{self.max_f_privacy_half_s2:.1f}  "
            "(paper: m should be no larger than ~15 n_min)"
        )
        if self.empirical:
            check = AsciiTable(
                ["n_y/n_x", "s", "f", "p analytic", "p simulated"],
                title="Empirical cross-check (bit-level tracker)",
            )
            for (ratio, s, f), measured in sorted(self.empirical.items()):
                idx = int(np.argmin(np.abs(self.load_factors - f)))
                check.add_row(
                    [ratio, s, f, float(self.curves[(ratio, s)][idx]), measured]
                )
            parts.append(check.render())
        return "\n\n".join(parts)


def run_figure2(
    *,
    n_x: float = 10_000.0,
    ratios: Sequence[int] = TRAFFIC_RATIOS,
    s_values: Sequence[int] = S_VALUES,
    common_fraction: float = DEFAULT_COMMON_FRACTION,
    grid_points: int = 400,
    empirical_checks: bool = False,
    empirical_trials: int = 8,
) -> Figure2Result:
    """Compute all Fig. 2 curves and headline readings.

    With ``empirical_checks`` the analytic curves are additionally
    validated by the bit-level tracker of
    :mod:`repro.privacy.attacker` at ``f = 3`` for each plot (a scaled
    population keeps the simulation fast; privacy depends on the load
    factor, not the absolute volume).
    """
    load_factors = np.geomspace(0.1, 50.0, int(grid_points))
    curves: Dict[Tuple[int, int], np.ndarray] = {}
    optima: Dict[Tuple[int, int], Tuple[float, float]] = {}
    for ratio in ratios:
        n_y = n_x * ratio
        for s in s_values:
            curves[(ratio, s)] = privacy_curve(
                load_factors,
                s,
                n_x=n_x,
                n_y=n_y,
                common_fraction=common_fraction,
            )
            optima[(ratio, s)] = optimal_load_factor(
                s, n_x=n_x, n_y=n_y, common_fraction=common_fraction
            )
    max_f = max_load_factor_for_privacy(
        0.5, 2, n_x=n_x, n_y=n_x, common_fraction=common_fraction
    )
    empirical: Dict[Tuple[int, int, float], float] = {}
    if empirical_checks:
        from repro.privacy.attacker import empirical_privacy
        from repro.utils.validation import next_power_of_two

        check_n_x = 2_000  # scaled population, same load factors
        for ratio in ratios:
            for s in (2, 5):
                f = 3.0
                m_x = next_power_of_two(f * check_n_x)
                m_y = next_power_of_two(f * check_n_x * ratio)
                measured = empirical_privacy(
                    check_n_x,
                    check_n_x * ratio,
                    int(common_fraction * check_n_x),
                    m_x,
                    m_y,
                    s,
                    trials=empirical_trials,
                    seed=ratio * 100 + s,
                )
                # Realized load factor after power-of-two rounding.
                realized_f = m_x / check_n_x
                empirical[(ratio, s, realized_f)] = measured.privacy
    return Figure2Result(
        load_factors=load_factors,
        curves=curves,
        optima=optima,
        n_x=n_x,
        common_fraction=common_fraction,
        max_f_privacy_half_s2=max_f,
        empirical=empirical,
    )

"""City-scale scaling study (extension).

Section IV-E analyzes per-pair cost; a deployment cares about the whole
city: how do encode time, decode time, memory, and accuracy behave as
the instrumented network grows from a town to a metro?  This study
sweeps scenarios of increasing size — any specs the scenario zoo
resolves (``ring-RxS``, ``grid-NxM``, ``tntp:...``); the default sweep
is the historical ring-radial ladder — through the complete pipeline:
demand synthesis, routing, online coding at every RSU, the full
all-pairs traffic matrix, reporting wall-clock and accuracy per scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.estimator import ZeroFractionPolicy
from repro.core.scheme import VlmScheme
from repro.runtime import Task, run_tasks
from repro.scenarios import get_scenario
from repro.utils.rng import SeedLike, as_generator, spawn_sequences
from repro.utils.tables import AsciiTable

__all__ = ["ScalePoint", "ScalingResult", "run_scaling"]


@dataclass(frozen=True)
class ScalePoint:
    """Measurements at one city size."""

    rsus: int
    vehicles: int
    pairs_measured: int
    encode_seconds: float
    matrix_seconds: float
    total_memory_mib: float
    median_error: float
    scenario: str = ""


@dataclass(frozen=True)
class ScalingResult:
    """The whole sweep."""

    points: List[ScalePoint]

    def render(self) -> str:
        table = AsciiTable(
            [
                "scenario",
                "RSUs",
                "vehicles/day",
                "pairs",
                "encode s",
                "matrix s",
                "memory MiB",
                "median |err| %",
            ],
            title="City-scale pipeline scaling (scenario sweep)",
        )
        for p in self.points:
            table.add_row(
                [
                    p.scenario,
                    p.rsus,
                    p.vehicles,
                    p.pairs_measured,
                    round(p.encode_seconds, 3),
                    round(p.matrix_seconds, 3),
                    round(p.total_memory_mib, 2),
                    100 * p.median_error,
                ]
            )
        return table.render()


def _scale_point(
    spec: str,
    trips_per_rsu: int,
    load_factor: float,
    min_truth: int,
    seed: np.random.SeedSequence,
) -> ScalePoint:
    """One scenario through the whole pipeline (a runtime task).

    *spec* travels as a string so the task pickles cleanly into
    process executors.  The estimates are deterministic per substream;
    the recorded wall-clock readings are measurements, not results,
    and naturally vary run to run (and under an oversubscribed
    parallel plan).
    """
    workload_seed, hash_seed_seq = spawn_sequences(seed, 2)
    scenario = get_scenario(spec)
    network = scenario.network()
    workload = scenario.workload(
        total_trips=trips_per_rsu * network.num_nodes, seed=workload_seed
    )
    volumes = workload.volumes()
    scheme = VlmScheme(
        volumes,
        s=2,
        load_factor=load_factor,
        hash_seed=int(as_generator(hash_seed_seq).integers(2**63)),
        policy=ZeroFractionPolicy.CLAMP,
    )
    start = time.perf_counter()
    scheme.run_period(workload.passes())
    encode_seconds = time.perf_counter() - start

    start = time.perf_counter()
    matrix = scheme.decoder.all_pairs()
    matrix_seconds = time.perf_counter() - start

    truth = workload.common_volumes()
    errors = [
        abs(matrix[pair].value - true) / true
        for pair, true in truth.items()
        if true >= min_truth and pair in matrix
    ]
    memory_bits = sum(scheme.array_size(rsu) for rsu in scheme.rsu_ids)
    return ScalePoint(
        rsus=network.num_nodes,
        vehicles=workload.plan.trips.total_trips,
        pairs_measured=len(matrix),
        encode_seconds=encode_seconds,
        matrix_seconds=matrix_seconds,
        total_memory_mib=memory_bits / 8 / 1024 / 1024,
        median_error=float(np.median(errors)) if errors else float("nan"),
        scenario=scenario.name,
    )


def run_scaling(
    *,
    city_sizes: Sequence[Tuple[int, int]] = ((2, 6), (3, 8), (4, 10)),
    scenarios: Optional[Sequence[str]] = None,
    trips_per_rsu: int = 4_000,
    load_factor: float = 8.0,
    min_truth: int = 300,
    seed: SeedLike = 41,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
) -> ScalingResult:
    """Sweep a ladder of scenarios through the whole pipeline.

    *scenarios* is a sequence of scenario zoo specs; when omitted the
    historical ``(rings, spokes)`` pairs in *city_sizes* sweep as
    ``ring-RxS`` scenarios (bit-identical to the pre-zoo study).
    Synthetic grids reach hundreds of RSUs: ``scenarios=("grid-8x8",
    "grid-12x12", "grid-16x16")`` sweeps 64 → 256 RSUs.  Each point is
    an independent runtime task with its own seed substream; accuracy
    results are bit-identical for any worker count/executor (timing
    columns are measurements and are not).
    """
    if scenarios is None:
        scenarios = [
            f"ring-{rings}x{spokes}" for rings, spokes in city_sizes
        ]
    specs = [str(spec) for spec in scenarios]
    points: List[ScalePoint] = run_tasks(
        [
            Task(
                fn=_scale_point,
                args=(spec, trips_per_rsu, load_factor, min_truth, sub),
                label=f"scaling:{spec}",
            )
            for spec, sub in zip(specs, spawn_sequences(seed, len(specs)))
        ],
        workers=workers,
        executor=executor,
    )
    return ScalingResult(points=points)

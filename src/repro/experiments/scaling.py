"""City-scale scaling study (extension).

Section IV-E analyzes per-pair cost; a deployment cares about the whole
city: how do encode time, decode time, memory, and accuracy behave as
the instrumented network grows from a town to a metro?  This study
sweeps synthetic ring-radial cities of increasing size through the
complete pipeline — gravity demand, routing, online coding at every
RSU, the full all-pairs traffic matrix — and reports wall-clock and
accuracy per scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.estimator import ZeroFractionPolicy
from repro.core.scheme import VlmScheme
from repro.roadnet.generators import ring_radial_network
from repro.roadnet.gravity import gravity_trip_table
from repro.runtime import Task, run_tasks
from repro.traffic.network_workload import NetworkWorkload
from repro.utils.rng import SeedLike, as_generator, spawn_sequences
from repro.utils.tables import AsciiTable

__all__ = ["ScalePoint", "ScalingResult", "run_scaling"]


@dataclass(frozen=True)
class ScalePoint:
    """Measurements at one city size."""

    rsus: int
    vehicles: int
    pairs_measured: int
    encode_seconds: float
    matrix_seconds: float
    total_memory_mib: float
    median_error: float


@dataclass(frozen=True)
class ScalingResult:
    """The whole sweep."""

    points: List[ScalePoint]

    def render(self) -> str:
        table = AsciiTable(
            [
                "RSUs",
                "vehicles/day",
                "pairs",
                "encode s",
                "matrix s",
                "memory MiB",
                "median |err| %",
            ],
            title="City-scale pipeline scaling (ring-radial networks)",
        )
        for p in self.points:
            table.add_row(
                [
                    p.rsus,
                    p.vehicles,
                    p.pairs_measured,
                    round(p.encode_seconds, 3),
                    round(p.matrix_seconds, 3),
                    round(p.total_memory_mib, 2),
                    100 * p.median_error,
                ]
            )
        return table.render()


def _scale_point(
    rings: int,
    spokes: int,
    trips_per_rsu: int,
    load_factor: float,
    min_truth: int,
    seed: np.random.SeedSequence,
) -> ScalePoint:
    """One city size through the whole pipeline (a runtime task).

    The estimates are deterministic per substream; the recorded
    wall-clock readings are measurements, not results, and naturally
    vary run to run (and under an oversubscribed parallel plan).
    """
    workload_seed, hash_seed_seq = spawn_sequences(seed, 2)
    network = ring_radial_network(rings, spokes)
    weights = {node: 1.0 for node in network.nodes}
    trips = gravity_trip_table(
        network,
        total_trips=trips_per_rsu * network.num_nodes,
        gamma=0.5,
        weights=weights,
    )
    workload = NetworkWorkload.build(network, trips, seed=workload_seed)
    volumes = workload.volumes()
    scheme = VlmScheme(
        volumes,
        s=2,
        load_factor=load_factor,
        hash_seed=int(as_generator(hash_seed_seq).integers(2**63)),
        policy=ZeroFractionPolicy.CLAMP,
    )
    start = time.perf_counter()
    scheme.run_period(workload.passes())
    encode_seconds = time.perf_counter() - start

    start = time.perf_counter()
    matrix = scheme.decoder.all_pairs()
    matrix_seconds = time.perf_counter() - start

    truth = workload.common_volumes()
    errors = [
        abs(matrix[pair].value - true) / true
        for pair, true in truth.items()
        if true >= min_truth and pair in matrix
    ]
    memory_bits = sum(scheme.array_size(rsu) for rsu in scheme.rsu_ids)
    return ScalePoint(
        rsus=network.num_nodes,
        vehicles=workload.plan.trips.total_trips,
        pairs_measured=len(matrix),
        encode_seconds=encode_seconds,
        matrix_seconds=matrix_seconds,
        total_memory_mib=memory_bits / 8 / 1024 / 1024,
        median_error=float(np.median(errors)) if errors else float("nan"),
    )


def run_scaling(
    *,
    city_sizes: Sequence[Tuple[int, int]] = ((2, 6), (3, 8), (4, 10)),
    trips_per_rsu: int = 4_000,
    load_factor: float = 8.0,
    min_truth: int = 300,
    seed: SeedLike = 41,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
) -> ScalingResult:
    """Sweep ring-radial cities of the given ``(rings, spokes)`` sizes.

    Each city size is an independent runtime task with its own seed
    substream; accuracy results are bit-identical for any worker
    count/executor (timing columns are measurements and are not).
    """
    points: List[ScalePoint] = run_tasks(
        [
            Task(
                fn=_scale_point,
                args=(rings, spokes, trips_per_rsu, load_factor, min_truth, sub),
                label=f"scaling:{rings}x{spokes}",
            )
            for (rings, spokes), sub in zip(
                city_sizes, spawn_sequences(seed, len(city_sizes))
            )
        ],
        workers=workers,
        executor=executor,
    )
    return ScalingResult(points=points)

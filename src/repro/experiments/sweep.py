"""Shared engine for the Fig. 4 / Fig. 5 accuracy sweeps.

Both figures run the same workload — ``n_x = 10,000``,
``n_y ∈ {1, 10, 50} · n_x``, true ``n_c`` swept from ``0.01 n_x`` to
``0.5 n_x`` — and plot the measured ``n̂_c`` against the true ``n_c``.
Figure 4 decodes with the fixed-length baseline, Figure 5 with the VLM
scheme; everything else is identical, so one engine serves both.

Array-size parameters follow the paper's protocol ("chosen to
guarantee a minimum privacy of at least 0.5"): the VLM load factor
``f̄`` is the largest factor meeting the floor at the least-traffic
RSU, and the baseline ``m`` is the corresponding fixed size derived
from ``n_min`` (Section VI-B).

Implementation note: identities are materialized once per ratio and
re-sliced per sweep point with a fresh hash seed — statistically
identical to fresh populations (the estimator only sees hashed
indices) and an order of magnitude faster over the 491-point sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baseline.scheme import FixedLengthScheme
from repro.core.sizing import fixed_array_size_for_privacy
from repro.core.estimator import ZeroFractionPolicy
from repro.core.scheme import VlmScheme
from repro.errors import ConfigurationError
from repro.privacy.optimizer import max_load_factor_for_privacy
from repro.runtime import Task, run_tasks
from repro.traffic.population import VehicleFleet
from repro.traffic.scenarios import FIG45_SWEEP
from repro.utils.rng import SeedLike, as_generator, spawn_sequences
from repro.utils.tables import AsciiTable

__all__ = ["SweepResult", "run_accuracy_sweep", "sweep_parameters"]


@dataclass(frozen=True)
class SweepSeries:
    """One plot's data: estimates over the swept true volumes."""

    ratio: int
    n_x: int
    n_y: int
    true_n_c: np.ndarray
    estimated_n_c: np.ndarray

    @property
    def relative_errors(self) -> np.ndarray:
        """``(n̂_c - n_c) / n_c`` per sweep point."""
        return (self.estimated_n_c - self.true_n_c) / self.true_n_c

    @property
    def mean_abs_error(self) -> float:
        """Mean |relative error| over the sweep."""
        return float(np.abs(self.relative_errors).mean())

    @property
    def rmse(self) -> float:
        """Root-mean-square relative error."""
        return float(np.sqrt((self.relative_errors**2).mean()))

    @property
    def worst_abs_error(self) -> float:
        """Largest |relative error| in the sweep."""
        return float(np.abs(self.relative_errors).max())

    @property
    def scatter_rmse(self) -> float:
        """RMS distance from the ``y = x`` line in units of ``n_x`` —
        the quantitative analogue of how scattered the paper's plot
        looks (both axes of Figs. 4-5 span ``[0, 0.5 n_x]``)."""
        return float(
            np.sqrt((((self.estimated_n_c - self.true_n_c) / self.n_x) ** 2).mean())
        )


@dataclass(frozen=True)
class SweepResult:
    """A full figure: one series per traffic ratio.

    ``scheme`` is ``"vlm"`` (Fig. 5) or ``"baseline"`` (Fig. 4).
    """

    scheme: str
    s: int
    series: Dict[int, SweepSeries]
    parameters: Dict[str, float]

    def render_scatter(self, ratio: int, *, width: int = 64, height: int = 18) -> str:
        """ASCII rendition of one plot of the figure (measured vs true
        volume with the equality line), mirroring the paper's visual."""
        from repro.utils.asciiplot import scatter_plot

        series = self.series[ratio]
        return scatter_plot(
            series.true_n_c,
            series.estimated_n_c,
            width=width,
            height=height,
            title=(
                f"{'VLM scheme' if self.scheme == 'vlm' else 'scheme of [9]'}: "
                f"n_y = {ratio} n_x — measured vs true n_c"
            ),
            x_label="true n_c",
            y_label="measured n_c^",
        )

    def render(self) -> str:
        """Summary table mirroring how the paper reads its scatter."""
        title = (
            f"Figure {'5 (VLM scheme)' if self.scheme == 'vlm' else '4 (scheme of [9])'} "
            f"— measured vs true point-to-point volume, s={self.s}"
        )
        table = AsciiTable(
            [
                "n_y / n_x",
                "points",
                "mean |err| %",
                "RMSE %",
                "worst |err| %",
                "scatter (RMS/n_x) %",
            ],
            title=title,
        )
        for ratio in sorted(self.series):
            s = self.series[ratio]
            table.add_row(
                [
                    ratio,
                    int(s.true_n_c.size),
                    100.0 * s.mean_abs_error,
                    100.0 * s.rmse,
                    100.0 * s.worst_abs_error,
                    100.0 * s.scatter_rmse,
                ]
            )
        lines = [table.render()]
        params = ", ".join(f"{k}={v:g}" for k, v in sorted(self.parameters.items()))
        lines.append(f"parameters: {params}")
        for ratio in sorted(self.series):
            lines.append("")
            lines.append(self.render_scatter(ratio))
        return "\n".join(lines)


def sweep_parameters(
    n_x: int, ratios: Sequence[int], s: int, *, min_privacy: float = 0.5
) -> Dict[str, float]:
    """The privacy-constrained sizing parameters for a sweep.

    Returns the VLM global load factor ``f̄`` and the baseline's fixed
    ``m`` (see module docstring).
    """
    f_bar = max_load_factor_for_privacy(min_privacy, s, n_x=n_x, n_y=n_x)
    volumes = [n_x] + [n_x * r for r in ratios]
    m_fixed = fixed_array_size_for_privacy(volumes, s, min_privacy=min_privacy)
    return {"load_factor": f_bar, "baseline_m": float(m_fixed)}


def _sweep_ratio_series(
    scheme: str,
    n_x: int,
    ratio: int,
    n_c_array: np.ndarray,
    s: int,
    params: Dict[str, float],
    seed: np.random.SeedSequence,
) -> SweepSeries:
    """One ratio's full sweep (a runtime task).

    The ratio's substream splits into one fleet stream plus one
    hash-seed stream per sweep point, all derived up front.
    """
    n_y = n_x * ratio
    fleet_seed, *point_seeds = spawn_sequences(seed, 1 + int(n_c_array.size))
    fleet = VehicleFleet.random(n_x + n_y, seed=fleet_seed)
    estimates: List[float] = []
    for n_c, point_seed in zip(n_c_array, point_seeds):
        hash_seed = int(as_generator(point_seed).integers(2**63))
        ids_x = fleet.ids[:n_x]
        keys_x = fleet.keys[:n_x]
        # Common vehicles are the first n_c of the x-population.
        ids_y = np.concatenate([fleet.ids[:n_c], fleet.ids[n_x : n_x + n_y - n_c]])
        keys_y = np.concatenate(
            [fleet.keys[:n_c], fleet.keys[n_x : n_x + n_y - n_c]]
        )
        if scheme == "vlm":
            engine = VlmScheme(
                {1: n_x, 2: n_y},
                s=s,
                load_factor=params["load_factor"],
                hash_seed=hash_seed,
                policy=ZeroFractionPolicy.CLAMP,
            )
        else:
            engine = FixedLengthScheme(
                int(params["baseline_m"]), s=s, hash_seed=hash_seed
            )
        report_x = engine.encode_rsu(1, ids_x, keys_x)
        report_y = engine.encode_rsu(2, ids_y, keys_y)
        estimates.append(engine.measure(report_x, report_y).value)
    return SweepSeries(
        ratio=ratio,
        n_x=n_x,
        n_y=n_y,
        true_n_c=n_c_array.astype(float),
        estimated_n_c=np.asarray(estimates),
    )


def run_accuracy_sweep(
    scheme: str,
    *,
    n_x: int = FIG45_SWEEP.n_x,
    ratios: Sequence[int] = (1, 10, 50),
    s: int = FIG45_SWEEP.s,
    n_c_values: Optional[Sequence[int]] = None,
    seed: SeedLike = 0,
    min_privacy: float = 0.5,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
) -> SweepResult:
    """Run one figure's sweep.

    Parameters
    ----------
    scheme:
        ``"vlm"`` or ``"baseline"``.
    n_c_values:
        True common volumes to sweep (default: the paper's 491-point
        grid from :data:`repro.traffic.scenarios.FIG45_SWEEP`).
    workers, executor:
        Parallel execution plan (see :mod:`repro.runtime`); each
        traffic ratio is one task and results are bit-identical for
        any plan.
    """
    if scheme not in ("vlm", "baseline"):
        raise ConfigurationError(f"scheme must be 'vlm' or 'baseline', got {scheme!r}")
    if n_c_values is None:
        n_c_values = FIG45_SWEEP.n_c_values()
    n_c_array = np.asarray(sorted(set(int(v) for v in n_c_values)), dtype=np.int64)
    if n_c_array.size == 0 or n_c_array[0] <= 0 or n_c_array[-1] > n_x:
        raise ConfigurationError("n_c values must lie in (0, n_x]")
    params = sweep_parameters(n_x, ratios, s, min_privacy=min_privacy)
    all_series = run_tasks(
        [
            Task(
                fn=_sweep_ratio_series,
                args=(scheme, n_x, ratio, n_c_array, s, params, sub),
                label=f"{scheme}-sweep:ratio{ratio}",
            )
            for ratio, sub in zip(ratios, spawn_sequences(seed, len(ratios)))
        ],
        workers=workers,
        executor=executor,
    )
    series: Dict[int, SweepSeries] = {
        entry.ratio: entry for entry in all_series
    }
    return SweepResult(scheme=scheme, s=s, series=series, parameters=params)

"""Adaptive vs static array sizing under drifting demand (Section IV-C).

The paper sizes each RSU's bit array once, from historical volume; a
real deployment's demand drifts.  This experiment replays a multi-day
Sioux Falls scenario whose daily trip count declines geometrically and
compares two deployments that start from *identical* period-0 sizes:

* **static** — the privacy-optimal sizes computed on day 0 are kept
  for every subsequent day (the paper's rule applied once);
* **adaptive** — the between-period controller of
  :mod:`repro.adaptive` re-sizes each RSU from the previous day's
  observed volumes, with hysteresis and rate-limit guards.

Three quantities are tracked per day and per policy:

* **hysteresis band** — is each RSU's planned size within the
  controller's deadband of the privacy-optimal size for the volumes
  that drove the plan (day ``p``'s plan is judged against day
  ``p - 1``'s observed volumes — the controller acts one period
  behind, by construction)?  Adaptive must hold every live RSU in
  band; static drifts out as demand falls away from its day-0 sizes.
* **accuracy** — mean relative error of the decoded point-to-point
  matrix against the routed ground truth.  Static keeps its larger
  arrays, so its per-pair noise stays slightly lower; that is the
  price adaptive pays.
* **privacy** — the analytic preserved privacy ``p = P(E|A)``
  (Eq. 43) averaged over the measured pairs, plus one *empirical*
  tracker run (:func:`repro.privacy.attacker.empirical_privacy`) on
  the final day's highest-volume pair.  This is what adaptive buys:
  as demand falls, static's effective load factor drops below the
  privacy optimum ``f*`` and its preserved privacy decays; adaptive
  shrinks ``m_x`` to follow ``f*``.

Every per-day decode is an independent :mod:`repro.runtime` task, and
the run re-checks the final day's matrices against a serial re-decode
and against the other bit-storage backend — ``bit_identical`` asserts
digit-for-digit equality across worker counts and engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import SchemeConfig
from repro.core.decoder import CentralDecoder
from repro.core.encoder import encode_passes
from repro.core.estimator import PairEstimate, ZeroFractionPolicy
from repro.core.parameters import SchemeParameters
from repro.core.sizing import AdaptiveSizing, PrivacyOptimalSizing
from repro.privacy.attacker import empirical_privacy
from repro.privacy.formulas import preserved_privacy
from repro.privacy.optimizer import optimal_load_factor
from repro.runtime import Task, run_tasks
from repro.scenarios import get_scenario
from repro.service.runtime import DeploymentSpec
from repro.utils.tables import AsciiTable

__all__ = [
    "AdaptiveMatrixResult",
    "AdaptiveSizingResult",
    "PeriodOutcome",
    "run_adaptive_matrix",
    "run_adaptive_sizing",
]

PairKey = Tuple[int, int]
Matrix = Dict[PairKey, PairEstimate]


def _display(scenario: str) -> str:
    """Headline name: the historical wording for the default scenario,
    the spec string for everything else."""
    return "Sioux Falls" if scenario == "sioux-falls" else scenario


def _decode_day(
    scenario: str,
    trips: int,
    workload_seed: int,
    params: SchemeParameters,
    policy: ZeroFractionPolicy,
    sizes: Dict[int, int],
    period: int,
    engine: Optional[str],
) -> Matrix:
    """Encode one drifted day at a given size plan and decode all pairs.

    A runtime task: self-contained (resolves *scenario* by name and
    re-routes the day's workload from its trip count and seed — names
    travel through pickled process-executor tasks where workload
    objects should not), consumes no ambient randomness, and is
    therefore bit-identical at any worker count, on either backend.
    """
    workload = get_scenario(scenario).workload(
        total_trips=trips, seed=workload_seed, period=period
    )
    decoder = CentralDecoder(
        config=SchemeConfig(s=params.s, policy=policy, engine=engine)
    )
    for rsu_id, (ids, keys) in sorted(workload.passes().items()):
        decoder.submit(
            encode_passes(
                ids,
                keys,
                int(rsu_id),
                sizes[int(rsu_id)],
                params,
                period=period,
                backend=engine,
            )
        )
    return decoder.estimate_matrix(period)


def _day_task(
    spec: DeploymentSpec,
    sizes: Dict[int, int],
    period: int,
    engine: Optional[str],
    label: str,
) -> Task:
    """The decode task for day *period* of *spec* at plan *sizes*."""
    return Task(
        fn=_decode_day,
        args=(
            spec.scenario,
            spec.trips_for(period),
            spec.seed + period,
            spec.scheme.params,
            spec.policy,
            dict(sizes),
            period,
            engine,
        ),
        label=label,
    )


def _mean_error(
    matrix: Matrix, truth: Dict[PairKey, int], min_truth: int
) -> Tuple[float, int]:
    """Mean relative error over pairs with ground truth >= *min_truth*."""
    errors = [
        abs(matrix[pair].value - true_nc) / true_nc
        for pair, true_nc in sorted(truth.items())
        if true_nc >= min_truth and pair in matrix
    ]
    if not errors:
        return float("nan"), 0
    return float(np.mean(errors)), len(errors)


def _mean_privacy(
    volumes: Dict[int, int],
    truth: Dict[PairKey, int],
    sizes: Dict[int, int],
    s: int,
    min_truth: int,
) -> float:
    """Mean analytic preserved privacy over the qualifying pairs.

    Each pair is oriented ``m_x <= m_y`` as Eq. 43 requires; pairs
    below *min_truth* are skipped in lockstep with :func:`_mean_error`.
    """
    values: List[float] = []
    for (a, b), n_c in sorted(truth.items()):
        if n_c < min_truth:
            continue
        n_a, n_b = volumes[a], volumes[b]
        m_a, m_b = sizes[a], sizes[b]
        if m_a > m_b:
            n_a, n_b, m_a, m_b = n_b, n_a, m_b, m_a
        values.append(
            float(preserved_privacy(n_a, n_b, min(n_c, n_a, n_b), m_a, m_b, s))
        )
    return float(np.mean(values)) if values else float("nan")


def _min_truth(trips: int, total_trips: int, base: int) -> int:
    """The ground-truth floor for a drifted day, scaled with its
    demand (relative error against a near-zero denominator is not
    meaningful, but the floor must shrink as the whole day does)."""
    return max(20, round(base * trips / total_trips))


@dataclass(frozen=True)
class PeriodOutcome:
    """Both policies' behaviour over one drifted day."""

    period: int
    trips: int
    live_rsus: int
    #: RSUs whose size changed entering this day (adaptive only).
    resizes: int
    #: RSUs whose planned size is within the hysteresis band of the
    #: privacy-optimal size for the volumes that drove the plan.
    adaptive_in_band: int
    static_in_band: int
    #: Median effective load factor m_x / n_x over live RSUs.
    adaptive_load_factor: float
    static_load_factor: float
    #: Mean relative error of the decoded matrix (qualifying pairs).
    adaptive_error: float
    static_error: float
    #: Mean analytic preserved privacy (same pairs).
    adaptive_privacy: float
    static_privacy: float
    pairs: int


@dataclass(frozen=True)
class AdaptiveSizingResult:
    """Everything the adaptive-vs-static comparison measured."""

    total_trips: int
    periods: int
    drift: float
    s: int
    #: The privacy-optimal global load factor the controller targets.
    f_star: float
    hysteresis: int
    max_step: int
    outcomes: List[PeriodOutcome]
    #: Final-day empirical tracker on the highest-volume pair.
    attacker_pair: PairKey
    attacker_truth: int
    adaptive_empirical_privacy: float
    static_empirical_privacy: float
    #: Final-day matrices re-checked serially and on the other backend.
    serial_identical: bool
    engines_identical: bool
    size_trajectory: List[Dict[int, int]] = field(repr=False, default_factory=list)
    scenario: str = "sioux-falls"

    @property
    def adaptive_always_in_band(self) -> bool:
        """Did adaptive hold every live RSU in band, every day?"""
        return all(o.adaptive_in_band == o.live_rsus for o in self.outcomes)

    @property
    def static_drifts_out(self) -> bool:
        """Did static end the run with RSUs outside the band?"""
        return self.outcomes[-1].static_in_band < self.outcomes[-1].live_rsus

    @property
    def bit_identical(self) -> bool:
        """Final matrices identical serially and across backends?"""
        return self.serial_identical and self.engines_identical

    def render(self) -> str:
        table = AsciiTable(
            [
                "day",
                "trips",
                "resizes",
                "in band (adp)",
                "in band (sta)",
                "f (adp)",
                "f (sta)",
                "|err|% adp",
                "|err|% sta",
                "privacy adp",
                "privacy sta",
            ],
            title=(
                "Adaptive vs static sizing under drifting demand "
                f"({_display(self.scenario)}, "
                f"{self.total_trips:,} trips/day shrinking "
                f"{100 * -self.drift:.0f}%/day, s={self.s}, "
                f"f*={self.f_star:.2f}, hysteresis ±{self.hysteresis} "
                f"octave, max step {self.max_step})"
            ),
        )
        for o in self.outcomes:
            table.add_row(
                [
                    o.period,
                    o.trips,
                    o.resizes,
                    f"{o.adaptive_in_band}/{o.live_rsus}",
                    f"{o.static_in_band}/{o.live_rsus}",
                    f"{o.adaptive_load_factor:.2f}",
                    f"{o.static_load_factor:.2f}",
                    100 * o.adaptive_error,
                    100 * o.static_error,
                    f"{o.adaptive_privacy:.3f}",
                    f"{o.static_privacy:.3f}",
                ]
            )
        lines = [table.render()]
        lines.append(
            "band verdict      : adaptive "
            + ("in band every day" if self.adaptive_always_in_band else "LEFT THE BAND")
            + "; static "
            + (
                "drifted out of band"
                if self.static_drifts_out
                else "stayed in band (drift too mild)"
            )
        )
        lines.append(
            f"empirical tracker : pair {self.attacker_pair} "
            f"(n_c={self.attacker_truth:,}, final day): "
            f"adaptive p={self.adaptive_empirical_privacy:.3f}, "
            f"static p={self.static_empirical_privacy:.3f}"
        )
        lines.append(
            "determinism       : final matrices "
            + ("bit-identical" if self.serial_identical else "MISMATCH")
            + " serial vs parallel, "
            + ("bit-identical" if self.engines_identical else "MISMATCH")
            + " packed vs legacy backend"
        )
        return "\n".join(lines)


def run_adaptive_sizing(
    *,
    total_trips: int = 24_000,
    periods: int = 5,
    drift: float = -0.35,
    s: int = 2,
    seed: int = 13,
    min_truth: int = 200,
    attacker_trials: int = 4,
    scenario: str = "sioux-falls",
    workers: Optional[int] = None,
    executor: Optional[str] = None,
) -> AdaptiveSizingResult:
    """Compare adaptive and static sizing over a shrinking demand.

    Day ``p`` carries ``total_trips * (1 + drift) ** p`` trips.  The
    default drift (-35%/day, ~0.62 octaves) stays under the
    controller's per-period rate limit of ``max_step = 2`` octaves, so
    adaptive tracks it exactly; cumulatively it exceeds the hysteresis
    band within three days, so static cannot.  Per-day decodes run as
    independent runtime tasks (bit-identical for any *workers* /
    *executor*)."""
    controller = AdaptiveSizing(
        target=PrivacyOptimalSizing(s), hysteresis=1, max_step=2
    )
    spec = DeploymentSpec(
        total_trips=total_trips,
        seed=seed,
        s=s,
        periods=periods,
        drift=drift,
        sizing=controller,
        adaptive=True,
        scenario=scenario,
    )
    f_star, _ = optimal_load_factor(s)
    trajectory = spec.size_trajectory()
    static_sizes = trajectory[0]

    # One decode task per (policy, day), plus the final day again on
    # the legacy backend for the cross-engine check.
    last = periods - 1
    tasks = [
        _day_task(spec, trajectory[p], p, "packed", f"adaptive:day{p}")
        for p in range(periods)
    ]
    tasks += [
        _day_task(spec, static_sizes, p, "packed", f"static:day{p}")
        for p in range(periods)
    ]
    tasks += [
        _day_task(spec, trajectory[last], last, "legacy", "adaptive:legacy"),
        _day_task(spec, static_sizes, last, "legacy", "static:legacy"),
    ]
    decoded = run_tasks(tasks, workers=workers, executor=executor)
    adaptive_matrices = decoded[:periods]
    static_matrices = decoded[periods : 2 * periods]
    legacy_adaptive, legacy_static = decoded[2 * periods :]

    # Determinism: the final day re-decoded inline (serial, one
    # worker) and on the other backend must match digit for digit.
    serial = _decode_day(*_day_task(spec, trajectory[last], last, "packed", "x").args)
    serial_identical = serial == adaptive_matrices[last]
    engines_identical = (
        legacy_adaptive == adaptive_matrices[last]
        and legacy_static == static_matrices[last]
    )

    outcomes: List[PeriodOutcome] = []
    for p in range(periods):
        workload = spec.workload_for(p)
        volumes = workload.volumes()
        truth = workload.common_volumes()
        floor = _min_truth(spec.trips_for(p), total_trips, min_truth)
        # Day p's plan was computed from day p-1's observed volumes
        # (day 0 from its seed history): judge each policy's plan
        # against the volumes that drove it.
        driving = spec.observed_volumes(max(0, p - 1))
        live = {r: v for r, v in driving.items() if v > 0}
        adaptive_error, pairs = _mean_error(adaptive_matrices[p], truth, floor)
        static_error, _ = _mean_error(static_matrices[p], truth, floor)
        current = {r: float(v) for r, v in spec.observed_volumes(p).items() if v > 0}
        outcomes.append(
            PeriodOutcome(
                period=p,
                trips=spec.trips_for(p),
                live_rsus=len(live),
                resizes=0
                if p == 0
                else sum(
                    1
                    for r in trajectory[p]
                    if trajectory[p][r] != trajectory[p - 1][r]
                ),
                adaptive_in_band=sum(
                    1
                    for r, v in live.items()
                    if controller.in_band(trajectory[p][r], v)
                ),
                static_in_band=sum(
                    1
                    for r, v in live.items()
                    if controller.in_band(static_sizes[r], v)
                ),
                adaptive_load_factor=float(
                    np.median([trajectory[p][r] / v for r, v in current.items()])
                ),
                static_load_factor=float(
                    np.median([static_sizes[r] / v for r, v in current.items()])
                ),
                adaptive_error=adaptive_error,
                static_error=static_error,
                adaptive_privacy=_mean_privacy(
                    volumes, truth, trajectory[p], s, floor
                ),
                static_privacy=_mean_privacy(
                    volumes, truth, static_sizes, s, floor
                ),
                pairs=pairs,
            )
        )

    # Empirical tracker on the final day's highest-volume pair.
    final = spec.workload_for(last)
    final_truth = final.common_volumes()
    final_volumes = final.volumes()
    pair = max(sorted(final_truth), key=lambda k: final_truth[k])
    n_c = final_truth[pair]
    empirical: Dict[str, float] = {}
    for name, sizes in (("adaptive", trajectory[last]), ("static", static_sizes)):
        a, b = pair
        n_a, n_b, m_a, m_b = final_volumes[a], final_volumes[b], sizes[a], sizes[b]
        if m_a > m_b:
            n_a, n_b, m_a, m_b = n_b, n_a, m_b, m_a
        empirical[name] = empirical_privacy(
            n_a,
            n_b,
            min(n_c, n_a, n_b),
            m_a,
            m_b,
            s,
            trials=attacker_trials,
            seed=seed,
            hash_seed_base=spec.hash_seed,
        ).privacy

    return AdaptiveSizingResult(
        total_trips=total_trips,
        periods=periods,
        drift=drift,
        s=s,
        f_star=f_star,
        hysteresis=controller.hysteresis,
        max_step=controller.max_step,
        outcomes=outcomes,
        attacker_pair=pair,
        attacker_truth=n_c,
        adaptive_empirical_privacy=empirical["adaptive"],
        static_empirical_privacy=empirical["static"],
        serial_identical=serial_identical,
        engines_identical=engines_identical,
        size_trajectory=trajectory,
        scenario=spec.scenario,
    )


@dataclass(frozen=True)
class AdaptiveMatrixResult:
    """Multi-day adaptive decode behind ``repro matrix --adaptive``."""

    total_trips: int
    periods: int
    drift: float
    trips: List[int]
    resizes: List[int]
    mean_errors: List[float]
    pairs: List[int]
    serial_identical: bool
    engines_identical: bool
    size_trajectory: List[Dict[int, int]] = field(repr=False, default_factory=list)
    scenario: str = "sioux-falls"

    @property
    def bit_identical(self) -> bool:
        """Final matrix identical serially and across backends?"""
        return self.serial_identical and self.engines_identical

    def render(self) -> str:
        table = AsciiTable(
            ["day", "trips", "resizes", "mean |err| %", "pairs"],
            title=(
                f"Adaptive multi-day {_display(self.scenario)} matrix "
                f"({self.total_trips:,} trips/day shrinking "
                f"{100 * -self.drift:.0f}%/day, {self.periods} days)"
            ),
        )
        for p in range(self.periods):
            table.add_row(
                [
                    p,
                    self.trips[p],
                    self.resizes[p],
                    100 * self.mean_errors[p],
                    self.pairs[p],
                ]
            )
        lines = [table.render()]
        lines.append(
            "size trajectory   : "
            + " -> ".join(
                f"day {p}: {sum(plan.values()):,} bits"
                for p, plan in enumerate(self.size_trajectory)
            )
        )
        lines.append(
            "determinism       : final matrix "
            + ("bit-identical" if self.serial_identical else "MISMATCH")
            + " serial vs parallel, "
            + ("bit-identical" if self.engines_identical else "MISMATCH")
            + " packed vs legacy backend"
        )
        return "\n".join(lines)


def run_adaptive_matrix(
    *,
    total_trips: int = 60_000,
    periods: int = 5,
    drift: float = -0.35,
    s: int = 2,
    seed: int = 13,
    min_truth: int = 200,
    scenario: str = "sioux-falls",
    workers: Optional[int] = None,
    executor: Optional[str] = None,
) -> AdaptiveMatrixResult:
    """Decode every day of an adaptive multi-period deployment.

    Uses the deployment default controller (``--adaptive``:
    privacy-optimal target, hysteresis 1, max step 1, clamped to
    ``m_o``) so the trajectory matches ``repro loadgen --adaptive``
    for the same flags; per-day decodes are independent runtime tasks
    and the final day is re-checked serially and on the legacy
    backend."""
    spec = DeploymentSpec(
        total_trips=total_trips,
        seed=seed,
        s=s,
        periods=periods,
        drift=drift,
        adaptive=True,
        scenario=scenario,
    )
    trajectory = spec.size_trajectory()
    last = periods - 1
    tasks = [
        _day_task(spec, trajectory[p], p, "packed", f"matrix:day{p}")
        for p in range(periods)
    ]
    tasks.append(
        _day_task(spec, trajectory[last], last, "legacy", "matrix:legacy")
    )
    decoded = run_tasks(tasks, workers=workers, executor=executor)
    matrices, legacy = decoded[:periods], decoded[periods]
    serial = _decode_day(*tasks[last].args)

    mean_errors: List[float] = []
    pairs: List[int] = []
    resizes: List[int] = [0]
    for p in range(periods):
        truth = spec.workload_for(p).common_volumes()
        floor = _min_truth(spec.trips_for(p), total_trips, min_truth)
        error, count = _mean_error(matrices[p], truth, floor)
        mean_errors.append(error)
        pairs.append(count)
        if p > 0:
            resizes.append(
                sum(
                    1
                    for r in trajectory[p]
                    if trajectory[p][r] != trajectory[p - 1][r]
                )
            )
    return AdaptiveMatrixResult(
        total_trips=total_trips,
        periods=periods,
        drift=drift,
        trips=[spec.trips_for(p) for p in range(periods)],
        resizes=resizes,
        mean_errors=mean_errors,
        pairs=pairs,
        serial_identical=serial == matrices[last],
        engines_identical=legacy == matrices[last],
        size_trajectory=trajectory,
        scenario=spec.scenario,
    )

"""Section V check: closed-form accuracy vs Monte-Carlo simulation.

The paper analyzes the estimator's bias (Eq. 33) and standard
deviation (Eq. 36) mathematically.  This experiment evaluates both
closed forms over representative pair configurations and validates
them against direct simulation — the "numerical analysis" companion to
the paper's mathematics, and the quantitative explanation of why the
baseline collapses in Fig. 4 (its relative stddev explodes with the
traffic ratio) while VLM does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.accuracy.bias import relative_bias
from repro.accuracy.montecarlo import simulate_accuracy
from repro.accuracy.variance import estimator_stddev
from repro.core.sizing import array_size_for_volume
from repro.runtime import Task, run_tasks
from repro.utils.rng import SeedLike, spawn_sequences
from repro.utils.tables import AsciiTable

__all__ = ["AccuracyCase", "AccuracyAnalysisResult", "run_accuracy_analysis"]


@dataclass(frozen=True)
class AccuracyCase:
    """One evaluated configuration with closed-form and empirical stats."""

    n_x: int
    n_y: int
    n_c: int
    m_x: int
    m_y: int
    s: int
    closed_bias: float
    closed_stddev: float
    mc_bias: float
    mc_stddev: float


@dataclass(frozen=True)
class AccuracyAnalysisResult:
    """All evaluated cases."""

    cases: List[AccuracyCase]
    repetitions: int

    def render(self) -> str:
        table = AsciiTable(
            [
                "n_x",
                "n_y",
                "n_c",
                "m_x",
                "m_y",
                "s",
                "bias % (Eq.33)",
                "bias % (MC)",
                "std % (Eq.36)",
                "std % (MC)",
            ],
            title=(
                "Section V — closed-form vs Monte-Carlo accuracy "
                f"({self.repetitions} runs per case)"
            ),
        )
        for c in self.cases:
            table.add_row(
                [
                    c.n_x,
                    c.n_y,
                    c.n_c,
                    c.m_x,
                    c.m_y,
                    c.s,
                    100.0 * c.closed_bias,
                    100.0 * c.mc_bias,
                    100.0 * c.closed_stddev,
                    100.0 * c.mc_stddev,
                ]
            )
        return table.render()


#: Default configurations: the three Fig. 4/5 ratios plus a Table I row.
DEFAULT_CONFIGS: Tuple[Tuple[int, int, int, int], ...] = (
    (10_000, 10_000, 3_000, 2),
    (10_000, 100_000, 3_000, 2),
    (10_000, 500_000, 3_000, 2),
    (40_000, 451_000, 6_000, 2),
    (10_000, 100_000, 3_000, 5),
)


def _analyze_config(
    config: Tuple[int, int, int, int],
    load_factor: float,
    repetitions: int,
    seed: np.random.SeedSequence,
) -> AccuracyCase:
    """Closed forms + Monte-Carlo for one configuration (a runtime
    task; the nested Monte-Carlo battery inherits this task's
    substream and runs serial when this task is on a worker)."""
    n_x, n_y, n_c, s = config
    m_x = array_size_for_volume(n_x, load_factor)
    m_y = array_size_for_volume(n_y, load_factor)
    closed_bias = relative_bias(n_x, n_y, n_c, m_x, m_y, s, exact=True)
    closed_std = estimator_stddev(n_x, n_y, n_c, m_x, m_y, s)
    mc = simulate_accuracy(
        n_x, n_y, n_c, m_x, m_y, s, repetitions=repetitions, seed=seed
    )
    return AccuracyCase(
        n_x=n_x,
        n_y=n_y,
        n_c=n_c,
        m_x=m_x,
        m_y=m_y,
        s=s,
        closed_bias=closed_bias,
        closed_stddev=closed_std,
        mc_bias=mc.bias,
        mc_stddev=mc.stddev,
    )


def run_accuracy_analysis(
    *,
    configs: Sequence[Tuple[int, int, int, int]] = DEFAULT_CONFIGS,
    load_factor: float = 3.0,
    repetitions: int = 30,
    seed: SeedLike = 9,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
) -> AccuracyAnalysisResult:
    """Evaluate closed forms and Monte-Carlo for each configuration.

    Array sizes follow the VLM sizing rule at *load_factor* (so the
    cases exercise genuinely different ``m_x``/``m_y``).  Each
    configuration is an independent runtime task with its own seed
    substream — bit-identical for any worker count and executor.
    """
    cases: List[AccuracyCase] = run_tasks(
        [
            Task(
                fn=_analyze_config,
                args=(config, load_factor, repetitions, sub),
                label=f"accuracy:{config[0]}x{config[1]}:s{config[3]}",
            )
            for config, sub in zip(configs, spawn_sequences(seed, len(configs)))
        ],
        workers=workers,
        executor=executor,
    )
    return AccuracyAnalysisResult(cases=cases, repetitions=repetitions)

"""Full Sioux Falls traffic matrix: every pair, both schemes.

Table I samples eight RSU pairs; a transportation study consumes the
*whole* 24x24 matrix.  This experiment routes a calibrated gravity
workload over the Sioux Falls network, measures all 276 unordered
pairs with both schemes, and reports the error distribution
(percentiles) against the routed ground truth, stratified by the
traffic difference ratio ``d`` — the full-population version of the
paper's Table I comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baseline.scheme import FixedLengthScheme
from repro.core.sizing import fixed_array_size_for_privacy
from repro.core.estimator import PairEstimate, ZeroFractionPolicy
from repro.core.scheme import VlmScheme
from repro.privacy.optimizer import max_load_factor_for_privacy
from repro.runtime import Task, run_tasks
from repro.scenarios import get_scenario
from repro.traffic.network_workload import NetworkWorkload
from repro.utils.rng import SeedLike
from repro.utils.tables import AsciiTable

__all__ = ["MatrixResult", "run_od_matrix", "run_sioux_falls_matrix"]

PairKey = Tuple[int, int]


@dataclass(frozen=True)
class PairOutcome:
    """One measured pair."""

    pair: PairKey
    truth: int
    d: float
    vlm_error: float
    baseline_error: float


@dataclass(frozen=True)
class MatrixResult:
    """All-pairs measurement outcomes."""

    outcomes: List[PairOutcome]
    total_trips: int
    min_truth: int
    load_factor: float
    baseline_m: int
    scenario: str = "sioux-falls"

    def _errors(self, scheme: str) -> np.ndarray:
        attribute = "vlm_error" if scheme == "vlm" else "baseline_error"
        return np.array([getattr(o, attribute) for o in self.outcomes])

    def percentiles(self, scheme: str) -> Dict[str, float]:
        """Median / p90 / worst relative error of one scheme."""
        errors = self._errors(scheme)
        return {
            "median": float(np.percentile(errors, 50)),
            "p90": float(np.percentile(errors, 90)),
            "max": float(errors.max()),
        }

    def stratified_by_d(self, edges=(1, 2, 5, 10, 1e9)) -> List[Tuple[str, int, float, float]]:
        """Mean error per traffic-difference-ratio band."""
        rows = []
        for low, high in zip(edges, edges[1:]):
            band = [o for o in self.outcomes if low <= o.d < high]
            if not band:
                continue
            rows.append(
                (
                    f"{low:g} <= d < {high:g}",
                    len(band),
                    float(np.mean([o.vlm_error for o in band])),
                    float(np.mean([o.baseline_error for o in band])),
                )
            )
        return rows

    def render(self) -> str:
        # The historical golden headline text is preserved for the
        # default scenario; other scenarios print their spec string.
        display = (
            "Sioux Falls" if self.scenario == "sioux-falls" else self.scenario
        )
        table = AsciiTable(
            ["d band", "pairs", "VLM mean |err| %", "[9] mean |err| %"],
            title=(
                f"{display} full traffic matrix "
                f"({len(self.outcomes)} pairs with n_c >= {self.min_truth}, "
                f"{self.total_trips:,} trips/day, f̄ = {self.load_factor:.1f}, "
                f"baseline m = {self.baseline_m:,})"
            ),
        )
        for label, count, vlm, base in self.stratified_by_d():
            table.add_row([label, count, 100 * vlm, 100 * base])
        lines = [table.render()]
        for scheme in ("vlm", "baseline"):
            p = self.percentiles(scheme)
            lines.append(
                f"{scheme:>8}: median {100 * p['median']:.2f}%  "
                f"p90 {100 * p['p90']:.2f}%  worst {100 * p['max']:.2f}%"
            )
        return "\n".join(lines)


def _measure_scheme(
    kind: str,
    workload: NetworkWorkload,
    s: int,
    load_factor: float,
    baseline_m: int,
) -> Dict[PairKey, PairEstimate]:
    """Run one scheme over the whole day and decode all pairs (a
    runtime task; the measurement consumes no randomness — hash seed 7
    is pinned — so the matrix is deterministic by construction)."""
    if kind == "vlm":
        scheme = VlmScheme(
            workload.volumes(), s=s, load_factor=load_factor, hash_seed=7,
            policy=ZeroFractionPolicy.CLAMP,
        )
    else:
        scheme = FixedLengthScheme(baseline_m, s=s, hash_seed=7)
    scheme.run_period(workload.passes())
    # One vectorized all-pairs decode per scheme (bit-identical to
    # querying pair_estimate per pair, but a single batched pass).
    return scheme.decoder.estimate_matrix()


def run_od_matrix(
    *,
    scenario: str = "sioux-falls",
    total_trips: int = 360_600,
    min_truth: int = 500,
    s: int = 2,
    min_privacy: float = 0.5,
    seed: SeedLike = 13,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
) -> MatrixResult:
    """Measure a scenario's full OD matrix with both schemes.

    *scenario* is any spec :func:`repro.scenarios.get_scenario`
    resolves (``sioux-falls``, ``grid-16x16``, ``trajectory-replay``,
    ``tntp:...``).  Pairs whose true common volume is below
    *min_truth* are excluded from error statistics (relative error is
    not meaningful against a near-zero denominator).  The two schemes
    run as independent runtime tasks — bit-identical for any worker
    count and executor.
    """
    scenario_obj = get_scenario(scenario)
    workload = scenario_obj.workload(total_trips=total_trips, seed=seed)
    volumes = workload.volumes()
    truth = workload.common_volumes()
    n_min = min(volumes.values())
    load_factor = max_load_factor_for_privacy(
        min_privacy, s, n_x=n_min, n_y=n_min
    )
    baseline_m = fixed_array_size_for_privacy(
        volumes.values(), s, min_privacy=min_privacy
    )
    vlm_matrix, base_matrix = run_tasks(
        [
            Task(
                fn=_measure_scheme,
                args=(kind, workload, s, load_factor, baseline_m),
                label=f"matrix:{kind}",
            )
            for kind in ("vlm", "baseline")
        ],
        workers=workers,
        executor=executor,
    )

    outcomes: List[PairOutcome] = []
    for (a, b), true_nc in sorted(truth.items()):
        if true_nc < min_truth:
            continue
        d = max(volumes[a], volumes[b]) / min(volumes[a], volumes[b])
        key = (a, b) if a < b else (b, a)
        vlm_est = vlm_matrix[key]
        base_est = base_matrix[key]
        outcomes.append(
            PairOutcome(
                pair=(a, b),
                truth=true_nc,
                d=d,
                vlm_error=abs(vlm_est.value - true_nc) / true_nc,
                baseline_error=abs(base_est.value - true_nc) / true_nc,
            )
        )
    return MatrixResult(
        outcomes=outcomes,
        total_trips=workload.plan.trips.total_trips,
        min_truth=min_truth,
        load_factor=load_factor,
        baseline_m=baseline_m,
        scenario=scenario_obj.name,
    )


def run_sioux_falls_matrix(
    *,
    total_trips: int = 360_600,
    min_truth: int = 500,
    s: int = 2,
    min_privacy: float = 0.5,
    seed: SeedLike = 13,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
) -> MatrixResult:
    """Measure the full Sioux Falls matrix (``run_od_matrix`` on the
    default scenario; kept for the historical entry-point name)."""
    return run_od_matrix(
        scenario="sioux-falls",
        total_trips=total_trips,
        min_truth=min_truth,
        s=s,
        min_privacy=min_privacy,
        seed=seed,
        workers=workers,
        executor=executor,
    )

"""Figure 5: accuracy of the VLM scheme under the Fig. 4 workload.

The paper's reading: "our novel scheme stays accurate (the measured
traffic volume closely follow their real values)" for all three
traffic ratios — variable-length arrays plus unfolding eliminate the
unbalanced-load-factor problem.  Run side by side with
:mod:`repro.experiments.figure4` to reproduce the headline comparison.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.sweep import SweepResult, run_accuracy_sweep
from repro.utils.rng import SeedLike

__all__ = ["run_figure5"]


def run_figure5(
    *,
    n_c_values: Optional[Sequence[int]] = None,
    seed: SeedLike = 5,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
) -> SweepResult:
    """Run the Fig. 5 sweep (VLM scheme, ``s = 2``)."""
    return run_accuracy_sweep(
        "vlm",
        n_c_values=n_c_values,
        seed=seed,
        workers=workers,
        executor=executor,
    )

"""Attack-resilience study: response stuffing vs the integrity check.

The scheme's anonymity invites a cheap attack the paper does not
evaluate: a misbehaving on-board unit can answer queries *many times*
under fresh one-time MACs, inflating the RSU's counter ``n_x``.  Two
variants differ sharply:

* **Replay** — the unit resends its own (deterministic) response: the
  counter inflates but the duplicates keep hitting the *same* bit, so
  the bitmap-implied volume stays at the honest level.  The server's
  counter-vs-bitmap cross-check
  (:class:`repro.vcps.server.CentralServer`) flags this reliably.
* **Forgery** — the unit invents fresh uniform indices: each forged
  response is statistically indistinguishable from an honest vehicle,
  so the cross-check *cannot* see it.  This is the honest negative
  result: anonymity buys unlinkability at the price of unauthenticated
  counting, and defending against forgery needs rate limiting or
  anonymous credentials, out of the paper's scope.

The study quantifies both: inflation of the counter and of the
bitmap-implied volume, and whether the cross-check fires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.encoder import encode_passes
from repro.core.estimator import ZeroFractionPolicy, estimate_point_volume
from repro.core.parameters import SchemeParameters
from repro.core.reports import RsuReport
from repro.core.sizing import StaticSizing, array_size_for_volume
from repro.errors import ConfigurationError
from repro.hashing.logical_bitarray import select_indices
from repro.runtime import Task, run_tasks
from repro.traffic.population import VehicleFleet
from repro.utils.rng import SeedLike, as_generator, spawn_sequences
from repro.utils.tables import AsciiTable
from repro.vcps.history import VolumeHistory
from repro.vcps.server import CentralServer

__all__ = ["AttackOutcome", "AttackResilienceResult", "run_attack_resilience"]


@dataclass(frozen=True)
class AttackOutcome:
    """Effect of one attack configuration."""

    variant: str
    duplicates_per_attacker: int
    counter_inflation: float
    bitmap_estimate_inflation: float
    flagged: bool
    anomaly_deviations: float


@dataclass(frozen=True)
class AttackResilienceResult:
    """Outcomes across variants and stuffing intensities."""

    outcomes: List[AttackOutcome]
    n_honest: int
    attacker_count: int
    array_size: int

    def detection_threshold(self, variant: str) -> int:
        """Smallest duplicates-per-attacker flagged for *variant*
        (-1 if never flagged)."""
        flagged = [
            o.duplicates_per_attacker
            for o in self.outcomes
            if o.variant == variant and o.flagged
        ]
        return min(flagged) if flagged else -1

    def render(self) -> str:
        table = AsciiTable(
            [
                "variant",
                "dups/attacker",
                "counter +%",
                "bitmap est +%",
                "deviations",
                "flagged",
            ],
            title=(
                "Response-stuffing attack vs counter/bitmap cross-check "
                f"({self.n_honest:,} honest vehicles, "
                f"{self.attacker_count} attackers, m = {self.array_size:,})"
            ),
        )
        for o in self.outcomes:
            table.add_row(
                [
                    o.variant,
                    o.duplicates_per_attacker,
                    100 * o.counter_inflation,
                    100 * o.bitmap_estimate_inflation,
                    o.anomaly_deviations,
                    "YES" if o.flagged else "no",
                ]
            )
        lines = [table.render()]
        replay = self.detection_threshold("replay")
        if replay > 0:
            lines.append(
                f"replay stuffing flagged from {replay} duplicates per "
                "attacker upward"
            )
        if self.detection_threshold("forgery") < 0:
            lines.append(
                "forgery stuffing is never flagged — forged indices are "
                "statistically honest; mitigation needs rate limiting or "
                "anonymous credentials (outside the paper's scope)"
            )
        return "\n".join(lines)


def _attack_outcome(
    variant: str,
    duplicates: int,
    n_honest: int,
    attacker_count: int,
    m: int,
    s: int,
    load_factor: float,
    anomaly_threshold: float,
    fleet_seed: np.random.SeedSequence,
    seed: np.random.SeedSequence,
) -> AttackOutcome:
    """One (variant, intensity) cell of the sweep (a runtime task).

    The honest fleet is rebuilt from its shared substream; forged
    indices come from this cell's own substream, so cells are
    independent of execution order.
    """
    params = SchemeParameters(s=s, load_factor=load_factor, m_o=m, hash_seed=11)
    fleet = VehicleFleet.random(n_honest, seed=fleet_seed)
    honest = encode_passes(fleet.ids, fleet.keys, 1, m, params)
    bits = honest.bits.copy()
    extra = attacker_count * int(duplicates)
    if extra:
        if variant == "replay":
            # Attackers are the first `attacker_count` honest vehicles:
            # their deterministic replay index is their genuine Eq. (2)
            # index.
            replay_indices = (
                select_indices(
                    fleet.ids[:attacker_count],
                    fleet.keys[:attacker_count],
                    1,
                    params.salts,
                    params.m_o,
                    seed=params.hash_seed,
                )
                & (m - 1)
            )
            stuffed = np.repeat(replay_indices, int(duplicates))
        else:
            stuffed = as_generator(seed).integers(0, m, size=extra)
        bits.set_bits(stuffed)
    report = RsuReport(rsu_id=1, counter=honest.counter + extra, bits=bits)
    server = CentralServer(
        s,
        StaticSizing(load_factor),
        history=VolumeHistory({1: n_honest}),
        anomaly_threshold=anomaly_threshold,
    )
    server.receive_report(report)
    anomalies = server.anomalies
    bitmap_estimate = estimate_point_volume(
        report, policy=ZeroFractionPolicy.CLAMP
    )
    return AttackOutcome(
        variant=variant,
        duplicates_per_attacker=int(duplicates),
        counter_inflation=extra / n_honest,
        bitmap_estimate_inflation=(bitmap_estimate - n_honest) / n_honest,
        flagged=bool(anomalies),
        anomaly_deviations=(anomalies[0].deviations if anomalies else 0.0),
    )


def run_attack_resilience(
    *,
    n_honest: int = 20_000,
    attacker_fraction: float = 0.01,
    duplicates_grid: Sequence[int] = (0, 5, 20, 50, 200),
    load_factor: float = 8.0,
    s: int = 2,
    anomaly_threshold: float = 6.0,
    seed: SeedLike = 23,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
) -> AttackResilienceResult:
    """Sweep both attack variants and record inflation + detection.

    Every (variant, duplicates) cell is an independent runtime task
    with its own substream — bit-identical for any worker count and
    executor.
    """
    if not 0.0 <= attacker_fraction <= 1.0:
        raise ConfigurationError(
            f"attacker_fraction must be in [0, 1], got {attacker_fraction}"
        )
    m = array_size_for_volume(n_honest, load_factor)
    attacker_count = int(round(attacker_fraction * n_honest))
    cells = [
        (variant, duplicates)
        for variant in ("replay", "forgery")
        for duplicates in duplicates_grid
    ]
    fleet_seed, *cell_seeds = spawn_sequences(seed, 1 + len(cells))
    outcomes: List[AttackOutcome] = run_tasks(
        [
            Task(
                fn=_attack_outcome,
                args=(
                    variant,
                    int(duplicates),
                    n_honest,
                    attacker_count,
                    m,
                    s,
                    load_factor,
                    anomaly_threshold,
                    fleet_seed,
                    cell_seed,
                ),
                label=f"attack:{variant}:{duplicates}",
            )
            for (variant, duplicates), cell_seed in zip(cells, cell_seeds)
        ],
        workers=workers,
        executor=executor,
    )
    return AttackResilienceResult(
        outcomes=outcomes,
        n_honest=n_honest,
        attacker_count=attacker_count,
        array_size=m,
    )

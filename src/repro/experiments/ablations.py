"""Ablations of the design choices DESIGN.md calls out.

Three studies, each isolating one choice of the VLM design:

1. **Unfold-up vs fold-down** — the paper expands the *smaller* array
   by duplication.  The obvious alternative, OR-folding the larger
   array down to the smaller size, is also a valid comparison operator
   (the estimator simply runs with ``m_y -> m_x``); this ablation
   shows it collapses for large traffic ratios because the folded
   array saturates — the quantitative argument for unfolding up.
2. **Load-factor band** — power-of-two sizing realizes a load factor
   in ``[f̄, 2 f̄)``; this study measures accuracy at both band edges,
   bounding the effect of the rounding the scheme accepts in exchange
   for exact unfolding.
3. **Effect of s** — the logical bit array size trades privacy
   against estimator noise (the ``(s-1)/s`` term shrinks the per-car
   signal); this study quantifies the accuracy cost of larger ``s``.

Each study configuration is an independent :mod:`repro.runtime` task
with its own seed substream (the fleet is shared across studies via a
dedicated substream), so the result is bit-identical for any worker
count and executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.bitarray import BitArray
from repro.core.estimator import (
    ZeroFractionPolicy,
    estimate_from_fractions,
)
from repro.core.reports import RsuReport
from repro.core.scheme import VlmScheme
from repro.core.sizing import array_size_for_volume
from repro.errors import SaturatedArrayError
from repro.runtime import Task, run_tasks
from repro.traffic.population import VehicleFleet
from repro.utils.rng import SeedLike, as_generator, spawn_sequences
from repro.utils.tables import AsciiTable

__all__ = ["AblationResult", "run_ablations", "fold_down"]


def fold_down(array: BitArray, target_size: int) -> BitArray:
    """OR-fold *array* down to *target_size* bits (the unfolding
    alternative studied by ablation 1): bit ``i`` of the result is the
    OR of all source bits congruent to ``i`` mod *target_size*."""
    if array.size % target_size != 0:
        raise ValueError(
            f"target size {target_size} does not divide array size {array.size}"
        )
    folded = np.asarray(array.bits).reshape(-1, target_size).any(axis=0)
    return BitArray(target_size, folded)


@dataclass(frozen=True)
class AblationRow:
    """One measured configuration of one study."""

    study: str
    label: str
    mean_abs_error: float
    detail: str = ""


@dataclass(frozen=True)
class AblationResult:
    """All ablation rows, grouped by study."""

    rows: List[AblationRow]
    repetitions: int

    def study(self, name: str) -> List[AblationRow]:
        """Rows of one study."""
        return [row for row in self.rows if row.study == name]

    def render(self) -> str:
        parts: List[str] = []
        for study in dict.fromkeys(row.study for row in self.rows):
            table = AsciiTable(
                ["configuration", "mean |err| %", "note"],
                title=f"Ablation — {study} ({self.repetitions} runs each)",
            )
            for row in self.study(study):
                table.add_row([row.label, 100.0 * row.mean_abs_error, row.detail])
            parts.append(table.render())
        return "\n\n".join(parts)


def _pair_reports(
    fleet: VehicleFleet,
    n_x: int,
    n_y: int,
    n_c: int,
    scheme: VlmScheme,
) -> Dict[int, RsuReport]:
    ids_x, keys_x = fleet.ids[:n_x], fleet.keys[:n_x]
    ids_y = np.concatenate([fleet.ids[:n_c], fleet.ids[n_x : n_x + n_y - n_c]])
    keys_y = np.concatenate([fleet.keys[:n_c], fleet.keys[n_x : n_x + n_y - n_c]])
    return {
        1: scheme.encode_rsu(1, ids_x, keys_x),
        2: scheme.encode_rsu(2, ids_y, keys_y),
    }


def _mean_abs_error(estimates: Sequence[float], n_c: int) -> float:
    return float(np.mean([abs(e - n_c) / n_c for e in estimates]))


def _hash_seeds(
    seed: np.random.SeedSequence, repetitions: int
) -> List[int]:
    """Per-repetition hash seeds, all derived up front from *seed*."""
    return [
        int(as_generator(sub).integers(2**63))
        for sub in spawn_sequences(seed, repetitions)
    ]


def _study_unfold_vs_fold(
    n_x: int,
    n_y: int,
    n_c: int,
    load_factor: float,
    repetitions: int,
    fleet_seed: np.random.SeedSequence,
    seed: np.random.SeedSequence,
) -> List[AblationRow]:
    """Study 1: unfold-up (the paper's design) vs fold-down."""
    fleet = VehicleFleet.random(n_x + n_y, seed=fleet_seed)
    up_estimates: List[float] = []
    down_estimates: List[float] = []
    saturated = 0
    for hash_seed in _hash_seeds(seed, repetitions):
        scheme = VlmScheme(
            {1: n_x, 2: n_y},
            s=2,
            load_factor=load_factor,
            hash_seed=hash_seed,
            policy=ZeroFractionPolicy.CLAMP,
        )
        reports = _pair_reports(fleet, n_x, n_y, n_c, scheme)
        up_estimates.append(scheme.measure(reports[1], reports[2]).value)
        # Fold-down alternative: estimator runs entirely at m_x.
        m_x = reports[1].array_size
        folded = fold_down(reports[2].bits, m_x)
        joint = reports[1].bits | folded
        v_x = max(reports[1].bits.zero_fraction(), 0.5 / m_x)
        v_y = max(folded.zero_fraction(), 0.5 / m_x)
        v_c = max(joint.zero_fraction(), 0.5 / m_x)
        if folded.is_saturated() or joint.is_saturated():
            saturated += 1
        try:
            down_estimates.append(
                estimate_from_fractions(v_c, v_x, v_y, m_x, scheme.s)
            )
        except SaturatedArrayError:  # pragma: no cover - clamped above
            saturated += 1
    return [
        AblationRow(
            study="unfold-up vs fold-down",
            label="unfold up (paper)",
            mean_abs_error=_mean_abs_error(up_estimates, n_c),
        ),
        AblationRow(
            study="unfold-up vs fold-down",
            label="fold down (alternative)",
            mean_abs_error=_mean_abs_error(down_estimates, n_c),
            detail=f"{saturated}/{repetitions} runs saturated the folded array",
        ),
    ]


def _study_band_edge(
    n_x: int,
    n_y: int,
    n_c: int,
    factor: float,
    label: str,
    repetitions: int,
    fleet_seed: np.random.SeedSequence,
    seed: np.random.SeedSequence,
) -> List[AblationRow]:
    """Study 2: one edge of the realized load-factor band [f̄, 2 f̄)."""
    fleet = VehicleFleet.random(n_x + n_y, seed=fleet_seed)
    estimates: List[float] = []
    for hash_seed in _hash_seeds(seed, repetitions):
        scheme = VlmScheme(
            {1: n_x, 2: n_y},
            s=2,
            load_factor=factor,
            hash_seed=hash_seed,
            policy=ZeroFractionPolicy.CLAMP,
        )
        reports = _pair_reports(fleet, n_x, n_y, n_c, scheme)
        estimates.append(scheme.measure(reports[1], reports[2]).value)
    m_x = array_size_for_volume(n_x, factor)
    return [
        AblationRow(
            study="load-factor band",
            label=label,
            mean_abs_error=_mean_abs_error(estimates, n_c),
            detail=f"m_x = {m_x:,}",
        )
    ]


def _study_effect_of_s(
    n_x: int,
    n_y: int,
    n_c: int,
    s: int,
    load_factor: float,
    repetitions: int,
    fleet_seed: np.random.SeedSequence,
    seed: np.random.SeedSequence,
) -> List[AblationRow]:
    """Study 3: accuracy cost of one logical array size ``s``."""
    fleet = VehicleFleet.random(n_x + n_y, seed=fleet_seed)
    estimates: List[float] = []
    for hash_seed in _hash_seeds(seed, repetitions):
        scheme = VlmScheme(
            {1: n_x, 2: n_y},
            s=s,
            load_factor=load_factor,
            hash_seed=hash_seed,
            policy=ZeroFractionPolicy.CLAMP,
        )
        reports = _pair_reports(fleet, n_x, n_y, n_c, scheme)
        estimates.append(scheme.measure(reports[1], reports[2]).value)
    return [
        AblationRow(
            study="effect of s",
            label=f"s = {s}",
            mean_abs_error=_mean_abs_error(estimates, n_c),
            detail="per-car log-signal is ~1/(s m_y): grows noisier with s",
        )
    ]


def run_ablations(
    *,
    n_x: int = 10_000,
    ratio: int = 10,
    n_c: int = 2_000,
    load_factor: float = 8.0,
    repetitions: int = 10,
    seed: SeedLike = 21,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
) -> AblationResult:
    """Run all three ablation studies on one pair configuration."""
    n_y = n_x * ratio
    # One substream for the shared fleet, one per study configuration
    # (1 unfold-vs-fold + 2 band edges + 3 values of s = 6 tasks).
    fleet_seed, *config_seeds = spawn_sequences(seed, 7)
    tasks = [
        Task(
            fn=_study_unfold_vs_fold,
            args=(
                n_x, n_y, n_c, load_factor, repetitions,
                fleet_seed, config_seeds[0],
            ),
            label="ablation:unfold-vs-fold",
        )
    ]
    for offset, (factor, label) in enumerate(
        ((load_factor, "f̄ (band floor)"), (2 * load_factor, "2 f̄ (band ceiling)"))
    ):
        tasks.append(
            Task(
                fn=_study_band_edge,
                args=(
                    n_x, n_y, n_c, factor, label, repetitions,
                    fleet_seed, config_seeds[1 + offset],
                ),
                label=f"ablation:band:{factor:g}",
            )
        )
    for offset, s in enumerate((2, 5, 10)):
        tasks.append(
            Task(
                fn=_study_effect_of_s,
                args=(
                    n_x, n_y, n_c, s, load_factor, repetitions,
                    fleet_seed, config_seeds[3 + offset],
                ),
                label=f"ablation:s{s}",
            )
        )
    row_groups = run_tasks(tasks, workers=workers, executor=executor)
    rows = [row for group in row_groups for row in group]
    return AblationResult(rows=rows, repetitions=repetitions)

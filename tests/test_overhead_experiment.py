"""Tests for the Section IV-E overhead experiment."""

import pytest

from repro.experiments.overhead import run_overhead


@pytest.fixture(scope="module")
def result():
    return run_overhead(m_exponents=(12, 16))


class TestRunOverhead:
    def test_all_roles_measured(self, result):
        roles = {row.role for row in result.rows}
        assert roles == {
            "vehicle (2 hashes)",
            "rsu (1 bit set)",
            "bulk encode (per vehicle)",
            "server decode",
            "matrix decode scalar (per pair)",
            "matrix decode batched (per pair)",
        }

    def test_vehicle_cost_constant_in_m(self, result):
        rows = result.rows_for("vehicle (2 hashes)")
        assert len(rows) == 2
        ratio = rows[1].per_op_us / rows[0].per_op_us
        assert 0.3 < ratio < 3.0  # O(1): no systematic growth with m

    def test_server_cost_grows_with_m(self):
        # The O(m_y) claim is about per-bit work; measure it under the
        # legacy backend, where every bit costs a byte of traffic.  The
        # packed backend's word parallelism hides the growth until far
        # larger m than a unit test should touch.
        result = run_overhead(m_exponents=(12, 16), engine="legacy")
        rows = result.rows_for("server decode")
        assert rows[-1].per_op_us > rows[0].per_op_us

    def test_rsu_cost_is_microseconds(self, result):
        (row,) = result.rows_for("rsu (1 bit set)")
        assert row.per_op_us < 100.0

    def test_bulk_encoder_is_fast(self, result):
        (row,) = result.rows_for("bulk encode (per vehicle)")
        # Vectorized path: well under a microsecond per vehicle.
        assert row.per_op_us < 5.0

    def test_render(self, result):
        text = result.render()
        assert "Section IV-E" in text
        assert "O(m_y)" in text

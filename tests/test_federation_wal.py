"""Write-ahead log: record format, torn tails, CRC, replay recovery."""

import struct

import pytest

from repro.errors import WalError
from repro.federation.collector import FederatedCollector
from repro.federation.wal import WriteAheadLog, replay_wal
from repro.obs import MetricsRegistry
from repro.service import wire
from repro.service.runtime import DeploymentSpec


@pytest.fixture(scope="module")
def spec():
    return DeploymentSpec(total_trips=1_500, seed=13)


@pytest.fixture(scope="module")
def snapshots(spec):
    """One ShardSnapshot per RSU, deterministic shard assignment."""
    return [
        wire.ShardSnapshot.from_report(
            report, shard_id=rsu_id % 3, seq=index + 1
        )
        for index, (rsu_id, report) in enumerate(
            sorted(spec.reference_reports().items())
        )
    ]


def write_log(path, snaps):
    with WriteAheadLog(path) as wal:
        for snap in snaps:
            wal.append(snap)
    return wal


class TestRecordFormat:
    def test_roundtrip_is_lossless(self, tmp_path, snapshots):
        path = tmp_path / "log.wal"
        wal = write_log(path, snapshots)
        assert wal.records_appended == len(snapshots)
        assert wal.bytes_appended == path.stat().st_size
        replayed = list(replay_wal(path))
        assert len(replayed) == len(snapshots)
        for original, copy in zip(snapshots, replayed):
            assert copy == original

    def test_append_after_close_raises(self, tmp_path, snapshots):
        wal = WriteAheadLog(tmp_path / "log.wal")
        wal.close()
        wal.close()  # idempotent
        with pytest.raises(WalError):
            wal.append(snapshots[0])

    def test_append_is_append_only(self, tmp_path, snapshots):
        """Reopening an existing log appends; prior records survive."""
        path = tmp_path / "log.wal"
        write_log(path, snapshots[:2])
        write_log(path, snapshots[2:4])
        assert list(replay_wal(path)) == snapshots[:4]

    def test_empty_log_replays_nothing(self, tmp_path):
        path = tmp_path / "log.wal"
        path.touch()
        assert list(replay_wal(path)) == []


class TestTornTail:
    def test_truncated_payload_stops_cleanly(self, tmp_path, snapshots):
        path = tmp_path / "log.wal"
        write_log(path, snapshots[:3])
        data = path.read_bytes()
        path.write_bytes(data[:-5])  # tear the final record's payload
        registry = MetricsRegistry()
        replayed = list(replay_wal(path, registry=registry))
        assert replayed == snapshots[:2]
        assert registry.counter("federation.wal_truncated_total").value == 1

    def test_truncated_header_stops_cleanly(self, tmp_path, snapshots):
        path = tmp_path / "log.wal"
        write_log(path, snapshots[:2])
        with path.open("ab") as handle:
            handle.write(b"WL\x01")  # half a header, crash mid-write
        assert list(replay_wal(path)) == snapshots[:2]

    def test_corrupt_final_crc_is_treated_as_torn(
        self, tmp_path, snapshots
    ):
        path = tmp_path / "log.wal"
        write_log(path, snapshots[:2])
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte of the final record
        path.write_bytes(bytes(data))
        assert list(replay_wal(path)) == snapshots[:1]


class TestCorruption:
    def test_midlog_crc_mismatch_raises(self, tmp_path, snapshots):
        """Corruption anywhere but the tail is not a crash artefact —
        refuse to replay past it."""
        path = tmp_path / "log.wal"
        write_log(path, snapshots[:1])
        first_len = path.stat().st_size
        write_log(path, snapshots[1:3])
        data = bytearray(path.read_bytes())
        data[first_len - 1] ^= 0xFF  # corrupt record 1 of 3
        path.write_bytes(bytes(data))
        with pytest.raises(WalError):
            list(replay_wal(path))

    def test_bad_magic_raises(self, tmp_path, snapshots):
        path = tmp_path / "log.wal"
        write_log(path, snapshots[:1])
        data = bytearray(path.read_bytes())
        data[0:2] = b"XX"
        path.write_bytes(bytes(data))
        with pytest.raises(WalError):
            list(replay_wal(path))

    def test_unknown_record_type_raises(self, tmp_path, snapshots):
        path = tmp_path / "log.wal"
        payload = snapshots[0].payload()
        import zlib

        header = struct.pack(
            ">2sBII", b"WL", 99, len(payload), zlib.crc32(payload)
        )
        path.write_bytes(header + payload)
        with pytest.raises(WalError):
            list(replay_wal(path))


class TestRecovery:
    def test_recover_rebuilds_bit_identical_state(
        self, tmp_path, spec, snapshots
    ):
        """A collector killed after journalling replays to the same
        matrix a never-killed collector computed."""
        path = tmp_path / "log.wal"
        live = FederatedCollector(
            spec.build_central_server(), wal=WriteAheadLog(path)
        )
        for snap in snapshots:
            assert isinstance(live._handle(snap), wire.SnapshotAck)
        live_matrix = live.server.decoder.estimate_matrix(0)
        live.wal.close()

        recovered = FederatedCollector(spec.build_central_server())
        applied = recovered.recover(path)
        assert applied == len(snapshots)
        assert recovered.wal_records_replayed == len(snapshots)
        assert recovered.server.decoder.estimate_matrix(0) == live_matrix
        golden = spec.reference_decoder().estimate_matrix(0)
        assert recovered.server.decoder.estimate_matrix(0) == golden

    def test_replay_dedups_duplicated_records(
        self, tmp_path, spec, snapshots
    ):
        """A crash between WAL append and ack leaves a record the
        gateway will retransmit; replaying a log that contains the
        duplicate twice must still count each partial once."""
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            for snap in snapshots:
                wal.append(snap)
            wal.append(snapshots[0])  # crash-window duplicate

        recovered = FederatedCollector(spec.build_central_server())
        recovered.recover(path)
        assert recovered.snapshots_deduped == 1
        golden = spec.reference_decoder().estimate_matrix(0)
        assert recovered.server.decoder.estimate_matrix(0) == golden

    def test_recover_without_configured_wal_requires_path(self, spec):
        from repro.errors import ValidationError

        collector = FederatedCollector(spec.build_central_server())
        with pytest.raises(ValidationError):
            collector.recover()

"""Differential battery for the streaming incremental decoder.

The tentpole claim is exact: any prefix or window of a streaming
decode must be **bit-identical** to a batch decode over the same
responses — no tolerance, on both engine backends.  Hypothesis drives
randomized response sequences and batch splits against that claim;
the remaining classes pin window-boundary semantics, out-of-order
arrival, period rotation, the federation OR-merge path (with WAL
replay), and a golden time-sliced matrix.
"""

import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bitarray import BitArray
from repro.core.config import SchemeConfig
from repro.core.decoder import CentralDecoder
from repro.core.estimator import ZeroFractionPolicy
from repro.core.reports import RsuReport
from repro.core.sizing import StaticSizing
from repro.errors import ConfigurationError
from repro.federation.collector import FederatedCollector
from repro.federation.wal import WriteAheadLog
from repro.obs import MetricsRegistry
from repro.runtime import run_tasks, task
from repro.service import wire
from repro.service.collector import CollectorService
from repro.streaming import StreamingDecoder, window_for
from repro.vcps.server import CentralServer

DATA = pathlib.Path(__file__).parent / "data"
ENGINES = ["packed", "legacy"]


# ----------------------------------------------------------------------
# Scenario machinery
# ----------------------------------------------------------------------
def make_scenario(seed, *, rsus=3, windows=3, max_batch=40):
    """A deterministic random day: per-RSU sizes, index batches, and
    window tags, derived entirely from *seed*."""
    rng = np.random.default_rng(seed)
    sizes = {
        rsu_id: 1 << int(rng.integers(3, 8)) for rsu_id in range(1, rsus + 1)
    }
    batches = []
    for rsu_id, size in sizes.items():
        remaining = int(rng.integers(0, 120))
        while remaining > 0:
            count = int(min(remaining, rng.integers(1, max_batch + 1)))
            remaining -= count
            batches.append(
                (
                    rsu_id,
                    rng.integers(0, size, size=count, dtype=np.int64),
                    int(rng.integers(0, windows)),
                )
            )
    rng.shuffle(batches)
    return sizes, batches


def batch_reference(sizes, batches, *, s=2, engine=None):
    """A fresh batch decode over exactly *batches* (the ground truth the
    streaming path must reproduce digit for digit)."""
    decoder = CentralDecoder(
        config=SchemeConfig(s=s, policy=ZeroFractionPolicy.CLAMP, engine=engine)
    )
    decoder.submit_many(reference_reports(sizes, batches, engine=engine))
    return decoder.estimate_matrix(0)


def reference_reports(sizes, batches, *, engine=None, period=0):
    """One whole-period report per RSU built from *batches*."""
    per_rsu = {rsu_id: [] for rsu_id in sizes}
    for rsu_id, idx, _window in batches:
        per_rsu[rsu_id].append(idx)
    reports = []
    for rsu_id, chunks in sorted(per_rsu.items()):
        bits = BitArray(sizes[rsu_id], backend=engine)
        counter = 0
        for idx in chunks:
            counter += int(idx.size)
            if idx.size:
                bits.set_bits(np.unique(idx))
        reports.append(
            RsuReport(
                rsu_id=rsu_id, counter=counter, bits=bits, period=period
            )
        )
    return reports


def expected_joint_zeros(sizes, batches):
    """Joint zeros per pair at the pair's common size, by brute force."""
    arrays = {
        rsu_id: np.zeros(size, dtype=bool) for rsu_id, size in sizes.items()
    }
    for rsu_id, idx, _window in batches:
        arrays[rsu_id][idx] = True
    ids = sorted(sizes)
    out = {}
    for i, x in enumerate(ids):
        for y in ids[i + 1 :]:
            target = max(sizes[x], sizes[y])
            tiled_x = np.tile(arrays[x], target // sizes[x])
            tiled_y = np.tile(arrays[y], target // sizes[y])
            out[(x, y)] = int(np.count_nonzero(~(tiled_x | tiled_y)))
    return out


def stream_scenario(sizes, batches, *, windows=3, engine=None):
    """Ingest *batches* one by one into a fresh streaming decoder."""
    decoder = StreamingDecoder(
        s=2,
        policy=ZeroFractionPolicy.CLAMP,
        engine=engine,
        windows=windows,
        registry=MetricsRegistry(),
    )
    for rsu_id in sorted(sizes):
        decoder.ingest(
            rsu_id,
            np.zeros(0, dtype=np.int64),
            size=sizes[rsu_id],
        )
    for rsu_id, idx, window in batches:
        decoder.ingest(rsu_id, idx, window=window, size=sizes[rsu_id])
    return decoder


# ----------------------------------------------------------------------
# The differential suite (hypothesis)
# ----------------------------------------------------------------------
class TestDifferentialPrefix:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        engine=st.sampled_from(ENGINES),
        cut=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_any_prefix_is_bit_identical(self, seed, engine, cut):
        """Stop the stream at an arbitrary batch boundary: the live
        matrix equals a fresh batch decode over exactly that prefix."""
        sizes, batches = make_scenario(seed)
        prefix = batches[: int(round(cut * len(batches)))]
        decoder = stream_scenario(sizes, prefix, engine=engine)
        assert decoder.live_matrix() == batch_reference(
            sizes, prefix, engine=engine
        )

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        engine=st.sampled_from(ENGINES),
    )
    @settings(max_examples=20, deadline=None)
    def test_running_joint_zeros_track_ground_truth(self, seed, engine):
        """The incremental per-pair counts equal brute-force tiling
        after every single batch, not just at the end."""
        sizes, batches = make_scenario(seed, rsus=3)
        decoder = stream_scenario(sizes, [], engine=engine)
        for stop in range(len(batches) + 1):
            if stop:
                rsu_id, idx, window = batches[stop - 1]
                decoder.ingest(
                    rsu_id, idx, window=window, size=sizes[rsu_id]
                )
            assert decoder.joint_zeros() == expected_joint_zeros(
                sizes, batches[:stop]
            )

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_backends_agree_exactly(self, seed):
        sizes, batches = make_scenario(seed)
        matrices = [
            stream_scenario(sizes, batches, engine=engine).live_matrix()
            for engine in ENGINES
        ]
        assert matrices[0] == matrices[1]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_differential_under_parallel_runtime(self, workers):
        """The whole differential check runs clean through run_tasks at
        1 and 2 workers — streaming state is per-task, never shared."""

        def check(seed, engine):
            sizes, batches = make_scenario(seed)
            decoder = stream_scenario(sizes, batches, engine=engine)
            return decoder.live_matrix() == batch_reference(
                sizes, batches, engine=engine
            )

        tasks = [
            task(check, seed, engine)
            for seed in range(6)
            for engine in ENGINES
        ]
        results = run_tasks(tasks, workers=workers, executor="thread")
        assert results == [True] * len(tasks)


# ----------------------------------------------------------------------
# Window semantics
# ----------------------------------------------------------------------
class TestWindowEdges:
    def test_boundary_instant_belongs_to_later_window(self):
        assert window_for(0.0, 10.0, 4) == 0
        assert window_for(9.999, 10.0, 4) == 0
        assert window_for(10.0, 10.0, 4) == 1  # exact boundary
        assert window_for(30.0, 10.0, 4) == 3

    def test_instants_past_period_end_clamp(self):
        assert window_for(40.0, 10.0, 4) == 3
        assert window_for(1e9, 10.0, 4) == 3

    def test_bad_instants_raise(self):
        with pytest.raises(ConfigurationError):
            window_for(-0.1, 10.0, 4)
        with pytest.raises(ConfigurationError):
            window_for(1.0, 0.0, 4)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_window_decodes_like_empty_reports(self, engine):
        sizes, batches = make_scenario(7, windows=3)
        only_w0 = [(r, idx, 0) for r, idx, _w in batches]
        decoder = stream_scenario(sizes, only_w0, engine=engine)
        empty = batch_reference(sizes, [], engine=engine)
        assert decoder.window_matrix(window=1) == empty
        assert decoder.window_matrix(window=2) == empty

    @pytest.mark.parametrize("engine", ENGINES)
    def test_out_of_order_windows_decode_identically(self, engine):
        """Late and out-of-order batches within a period change no
        answer — the running state is an OR."""
        sizes, batches = make_scenario(11, windows=3)
        shuffled = list(batches)
        np.random.default_rng(99).shuffle(shuffled)
        a = stream_scenario(sizes, batches, engine=engine)
        b = stream_scenario(sizes, shuffled, engine=engine)
        assert a.live_matrix() == b.live_matrix()
        for w in range(3):
            assert a.window_matrix(window=w) == b.window_matrix(window=w)
        assert a.joint_zeros() == b.joint_zeros()

    def test_window_prefix_equals_batch_of_those_windows(self):
        sizes, batches = make_scenario(23, windows=3)
        decoder = stream_scenario(sizes, batches)
        for w in range(3):
            covered = [b for b in batches if b[2] <= w]
            assert decoder.matrix_at(at=w) == batch_reference(sizes, covered)

    def test_seconds_form_quantizes_through_window_for(self):
        sizes, batches = make_scenario(5, windows=3)
        decoder = StreamingDecoder(
            s=2,
            policy=ZeroFractionPolicy.CLAMP,
            windows=3,
            window_s=60.0,
            registry=MetricsRegistry(),
        )
        for rsu_id, idx, window in batches:
            decoder.ingest(rsu_id, idx, window=window, size=sizes[rsu_id])
        reference = stream_scenario(sizes, batches)
        assert decoder.matrix_at(at=59.9) == reference.matrix_at(at=0)
        assert decoder.matrix_at(at=60.0) == reference.matrix_at(at=1)
        assert decoder.matrix_at(at=1e6) == reference.live_matrix()

    def test_ring_rotates_across_period_close(self):
        """Sealing period 0 with authoritative reports leaves its
        window slices intact; period 1 state starts independent."""
        sizes, batches = make_scenario(31, windows=2)
        decoder = stream_scenario(sizes, batches, windows=2)
        before = {
            w: decoder.window_matrix(period=0, window=w) for w in range(2)
        }
        for report in reference_reports(sizes, batches):
            decoder.observe_report(report)
        # Sealed counters are authoritative and match the replay.
        for report in reference_reports(sizes, batches):
            assert decoder.counter(report.rsu_id) == report.counter
        # Period 1 begins fresh without disturbing period 0's slices.
        next_batches = [
            (rsu_id, idx, w) for rsu_id, idx, w in make_scenario(32)[1][:4]
        ]
        for rsu_id, idx, w in next_batches:
            if rsu_id in sizes:
                decoder.ingest(
                    rsu_id, idx % sizes[rsu_id], period=1,
                    window=min(w, 1), size=sizes[rsu_id],
                )
        for w in range(2):
            assert decoder.window_matrix(period=0, window=w) == before[w]
        assert decoder.live_matrix(period=0) == batch_reference(sizes, batches)

    def test_conflicting_array_size_raises(self):
        decoder = StreamingDecoder(s=2, registry=MetricsRegistry())
        decoder.ingest(1, np.array([0]), size=16)
        with pytest.raises(ConfigurationError):
            decoder.ingest(1, np.array([0]), size=32)

    def test_first_batch_must_declare_size(self):
        decoder = StreamingDecoder(s=2, registry=MetricsRegistry())
        with pytest.raises(ConfigurationError):
            decoder.ingest(1, np.array([0]))


# ----------------------------------------------------------------------
# Golden time-sliced matrices
# ----------------------------------------------------------------------
def golden_payload():
    """The scenario pinned by tests/data/streaming_golden.json."""
    sizes, batches = make_scenario(1234, rsus=3, windows=3)
    decoder = stream_scenario(sizes, batches, windows=3)
    payload = {"sizes": {str(k): v for k, v in sorted(sizes.items())}}
    for w in range(3):
        matrix = decoder.window_matrix(window=w)
        payload[f"window_{w}"] = {
            f"{x}-{y}": {
                "value": est.value,
                "v_c": est.v_c,
                "n_x": est.n_x,
                "n_y": est.n_y,
            }
            for (x, y), est in sorted(matrix.items())
        }
    payload["live"] = {
        f"{x}-{y}": est.value
        for (x, y), est in sorted(decoder.live_matrix().items())
    }
    return payload


class TestGoldenWindows:
    def test_time_sliced_matrices_match_golden(self):
        """Exact float equality against the checked-in golden file
        (regenerate with tests/data/regen_streaming_golden.py)."""
        golden = json.loads((DATA / "streaming_golden.json").read_text())
        assert golden_payload() == golden


# ----------------------------------------------------------------------
# Federation: window-tagged shard partials
# ----------------------------------------------------------------------
def shard_partials(sizes, batches, *, shard_of, windows):
    """One WindowSnapshot per ingested batch, tagged with its shard."""
    partials = []
    for seq, (rsu_id, idx, window) in enumerate(batches, start=1):
        bits = BitArray(sizes[rsu_id])
        if idx.size:
            bits.set_bits(np.unique(idx))
        report = RsuReport(
            rsu_id=rsu_id, counter=int(idx.size), bits=bits, period=0
        )
        partials.append(
            wire.WindowSnapshot.from_report(
                report,
                window=window,
                shard_id=shard_of(rsu_id, seq),
                seq=seq,
            )
        )
    return partials


def make_server(windows=3):
    return CentralServer(
        2,
        StaticSizing(2.0),
        policy=ZeroFractionPolicy.CLAMP,
        windows=windows,
    )


def fresh_collector(tmp_path=None, name="stream.wal"):
    server = make_server()
    wal = None if tmp_path is None else WriteAheadLog(tmp_path / name)
    return FederatedCollector(
        server, registry=MetricsRegistry(), wal=wal
    )


class TestFederationStreaming:
    def test_sharded_partials_match_unsharded_live(self):
        """Window partials from two shards OR-merge to exactly the
        matrix an unsharded streaming decoder computes."""
        sizes, batches = make_scenario(55, rsus=4, windows=3)
        partials = shard_partials(
            sizes, batches, shard_of=lambda rsu, _seq: rsu % 2, windows=3
        )
        collector = CollectorService(
            make_server(), registry=MetricsRegistry()
        )
        for partial in partials:
            reply = collector._handle(partial)
            assert isinstance(reply, wire.SnapshotAck)
        reference = stream_scenario(sizes, batches, windows=3)
        assert collector.server.live_matrix() == reference.live_matrix()
        for w in range(3):
            assert collector.server.window_matrix(
                window=w
            ) == reference.window_matrix(window=w)

    def test_redelivered_partials_dedup(self):
        sizes, batches = make_scenario(56, rsus=3, windows=3)
        partials = shard_partials(
            sizes, batches, shard_of=lambda rsu, _seq: rsu % 2, windows=3
        )
        collector = CollectorService(
            make_server(), registry=MetricsRegistry()
        )
        for partial in partials:
            collector._handle(partial)
        for partial in partials:  # full redelivery, e.g. gateway retry
            reply = collector._handle(partial)
            assert isinstance(reply, wire.SnapshotAck)
        assert collector.window_partials_deduped == len(partials)
        reference = stream_scenario(sizes, batches, windows=3)
        assert collector.server.live_matrix() == reference.live_matrix()

    def test_mid_period_rebalance_keeps_exactness(self):
        """An RSU handed to another shard mid-period uploads later
        windows under a new shard_id; the merge stays exact."""
        sizes, batches = make_scenario(57, rsus=3, windows=3)

        def shard_of(rsu_id, seq):
            # Everyone starts on shard 0; halfway through the feed the
            # odd RSUs are rebalanced onto shard 1.
            return 1 if (seq > len(batches) // 2 and rsu_id % 2) else 0

        partials = shard_partials(
            sizes, batches, shard_of=shard_of, windows=3
        )
        collector = CollectorService(
            make_server(), registry=MetricsRegistry()
        )
        for partial in partials:
            collector._handle(partial)
        reference = stream_scenario(sizes, batches, windows=3)
        assert collector.server.live_matrix() == reference.live_matrix()

    def test_wal_replay_restores_live_matrix(self, tmp_path):
        sizes, batches = make_scenario(58, rsus=3, windows=3)
        partials = shard_partials(
            sizes, batches, shard_of=lambda rsu, _seq: rsu % 2, windows=3
        )
        collector = fresh_collector(tmp_path)
        for partial in partials:
            collector._handle(partial)
        live = collector.server.live_matrix()
        windows = {
            w: collector.server.window_matrix(window=w) for w in range(3)
        }
        collector.wal.close()

        recovered = fresh_collector()
        replayed = recovered.recover(tmp_path / "stream.wal")
        assert replayed == len(partials)
        assert recovered.server.live_matrix() == live
        for w in range(3):
            assert recovered.server.window_matrix(window=w) == windows[w]

    def test_wal_replay_dedups_against_later_uploads(self, tmp_path):
        """Recovery then redelivery of the same partials must not
        double-merge (counters would drift)."""
        sizes, batches = make_scenario(59, rsus=3, windows=3)
        partials = shard_partials(
            sizes, batches, shard_of=lambda rsu, _seq: rsu % 2, windows=3
        )
        collector = fresh_collector(tmp_path)
        for partial in partials:
            collector._handle(partial)
        collector.wal.close()

        recovered = fresh_collector(tmp_path, name="second.wal")
        recovered.recover(tmp_path / "stream.wal")
        for partial in partials:
            recovered._handle(partial)
        assert recovered.window_partials_deduped == len(partials)
        reference = stream_scenario(sizes, batches, windows=3)
        assert recovered.server.live_matrix() == reference.live_matrix()


# ----------------------------------------------------------------------
# Server query surface
# ----------------------------------------------------------------------
class TestServerSurface:
    def test_traffic_matrix_at_routes_to_streaming(self):
        sizes, batches = make_scenario(60, windows=3)
        server = make_server()
        for seq, (rsu_id, idx, window) in enumerate(batches, start=1):
            bits = BitArray(sizes[rsu_id])
            if idx.size:
                bits.set_bits(np.unique(idx))
            server.receive_window_partial(
                rsu_id,
                bits.to_bytes(),
                sizes[rsu_id],
                int(idx.size),
                window=window,
            )
        reference = stream_scenario(sizes, batches, windows=3)
        assert server.live_matrix() == reference.live_matrix()
        for w in range(3):
            assert server.traffic_matrix(at=w) == reference.matrix_at(at=w)

    def test_period_close_still_authoritative(self):
        """traffic_matrix() without at= is the batch decoder's answer
        and seals the streaming counters."""
        sizes, batches = make_scenario(61, windows=3)
        server = make_server()
        for report in reference_reports(sizes, batches):
            server.receive_report(report)
        assert server.traffic_matrix() == batch_reference(sizes, batches)
        assert server.live_matrix() == batch_reference(sizes, batches)


# ----------------------------------------------------------------------
# End to end over localhost sockets (slow tier)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestWindowedServiceEndToEnd:
    def test_windowed_loadgen_live_matches_batch(self):
        """A windowed replay through gateway+collector sockets leaves
        the collector's live matrix bit-identical to the in-process
        decode, and every window slice queryable."""
        import asyncio

        from repro.service.loadgen import run_loadgen
        from repro.service.runtime import DeploymentSpec, start_services

        spec = DeploymentSpec(total_trips=1_200, seed=13)
        windows = 2

        async def body():
            gateway, collector = await start_services(
                spec, gateway_port=0, collector_port=0, windows=windows
            )
            try:
                result = await run_loadgen(
                    spec,
                    gateway_port=gateway.port,
                    collector_port=collector.port,
                    windows=windows,
                )
                live = collector.server.live_matrix()
                sliced = {
                    w: collector.server.window_matrix(window=w)
                    for w in range(windows)
                }
                stats = {
                    "gateway_windows": gateway.windows_closed,
                    "window_uploads": gateway.window_partials_uploaded,
                    "collector_partials": collector.window_partials_received,
                }
            finally:
                await gateway.stop()
                await collector.stop()
            return result, live, sliced, stats

        result, live, sliced, stats = asyncio.run(body())
        assert result.bit_identical
        assert live == spec.reference_decoder().estimate_matrix(0)
        rsus = len(spec.scheme.rsu_ids)
        assert stats["gateway_windows"] == windows
        assert stats["window_uploads"] == windows * rsus
        assert stats["collector_partials"] == windows * rsus
        # Window counters partition the day's point volumes exactly.
        for pair in live:
            assert (
                sum(sliced[w][pair].n_x for w in range(windows))
                == live[pair].n_x
            )
            assert (
                sum(sliced[w][pair].n_y for w in range(windows))
                == live[pair].n_y
            )

"""Integration tests for the agent-level VCPS simulation."""

import pytest

from repro.core.encoder import encode_passes
from repro.errors import ConfigurationError
from repro.vcps.simulation import VcpsSimulation


@pytest.fixture
def sim():
    return VcpsSimulation(
        {1: 100, 2: 400, 3: 150}, s=2, load_factor=4.0, seed=5,
        ticks_per_period=100_000,
    )


def drive_standard_fleet(sim):
    """60 common (1,2), 40 only-1, 200 only-2; returns true volumes."""
    routes = {}
    vid = 0
    for _ in range(60):
        routes[vid] = [1, 2]; vid += 1
    for _ in range(40):
        routes[vid] = [1]; vid += 1
    for _ in range(200):
        routes[vid] = [2]; vid += 1
    sim.drive_all(routes)
    return {"n_x": 100, "n_y": 260, "n_c": 60}


class TestDriving:
    def test_counters_exact(self, sim):
        truth = drive_standard_fleet(sim)
        assert sim.rsus[1].counter == truth["n_x"]
        assert sim.rsus[2].counter == truth["n_y"]
        assert sim.rsus[3].counter == 0

    def test_revisits_in_period_counted_once(self, sim):
        sim.drive(0, [1, 1, 1])
        assert sim.rsus[1].counter == 1

    def test_unknown_rsu_rejected(self, sim):
        with pytest.raises(ConfigurationError, match="unknown RSU"):
            sim.drive(0, [99])

    def test_empty_history_rejected(self):
        with pytest.raises(ConfigurationError):
            VcpsSimulation({})


class TestPeriodLifecycle:
    def test_end_to_end_measurement(self, sim):
        truth = drive_standard_fleet(sim)
        sim.close_period()
        estimate = sim.server.point_to_point(1, 2, period=0)
        # Tiny populations: generous bound, just confirm signal.
        assert abs(estimate.value - truth["n_c"]) < 45

    def test_vehicles_reset_across_periods(self, sim):
        sim.drive(0, [1])
        sim.close_period()
        sim.drive(0, [1])
        assert sim.rsus[1].counter == 1  # answered again in new period

    def test_resizing_follows_history(self, sim):
        drive_standard_fleet(sim)
        sim.close_period()
        before = sim.rsus[3].array_size
        sizes = sim.apply_resizing()
        # RSU 3 saw zero traffic; its average halved; size shrinks.
        assert sizes[3] <= before

    def test_resizing_capped_at_m_o(self, sim):
        for _ in range(3):
            for vid in range(1_000):
                sim.drive(vid + 10_000, [3])
            sim.close_period()
            sim.apply_resizing()
        assert sim.rsus[3].array_size <= sim.params.m_o


class TestBatchedDriveEquivalence:
    def test_drive_all_matches_per_message_drive(self):
        """drive_all's batched recording (handle_responses fast path)
        must leave every RSU bit-identical to per-message drive()."""
        def fleet():
            return VcpsSimulation(
                {1: 100, 2: 400, 3: 150}, s=2, load_factor=4.0, seed=5,
                ticks_per_period=100_000,
            )

        routes = {vid: [1, 2] for vid in range(50)}
        routes.update({vid: [2, 3] for vid in range(50, 120)})

        batched = fleet()
        total_batched = batched.drive_all(routes)
        per_message = fleet()
        total_single = sum(
            per_message.drive(vid, route) for vid, route in routes.items()
        )
        assert total_batched == total_single
        for rsu_id in (1, 2, 3):
            assert (
                batched.rsus[rsu_id].counter
                == per_message.rsus[rsu_id].counter
            )
            assert (
                batched.rsus[rsu_id].end_period().bits
                == per_message.rsus[rsu_id].end_period().bits
            )


class TestAgentVectorEquivalence:
    def test_agent_sim_matches_vectorized_encoder(self):
        """The per-message agent path and the bulk numpy path must
        produce identical bit arrays for the same identities, keys and
        hash seed."""
        sim = VcpsSimulation({1: 50}, s=2, load_factor=4.0, seed=9, hash_seed=123)
        vehicle_ids = list(range(200, 230))
        for vid in vehicle_ids:
            sim.drive(vid, [1])
        agent_report = sim.rsus[1].end_period()

        import numpy as np

        ids = np.array(vehicle_ids, dtype=np.uint64)
        keys = np.array(
            [sim._keys.key_for(v) for v in vehicle_ids], dtype=np.uint64
        )
        bulk_report = encode_passes(
            ids, keys, 1, sim.rsus[1].array_size, sim.params
        )
        assert bulk_report.bits == agent_report.bits
        assert bulk_report.counter == agent_report.counter

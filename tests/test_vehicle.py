"""Tests for the vehicle agent."""

import pytest

from repro.errors import AuthenticationError
from repro.vcps.messages import Query
from repro.vcps.pki import CertificateAuthority
from repro.vcps.vehicle import Vehicle


@pytest.fixture
def ca():
    return CertificateAuthority(seed=1)


@pytest.fixture
def vehicle(ca, small_params):
    return Vehicle(
        7, 1234, small_params, trust_anchor=ca.trust_anchor(), seed=1
    )


def make_query(ca, rsu_id=3, size=256, **kwargs):
    return Query(rsu_id=rsu_id, certificate=ca.issue(rsu_id), array_size=size, **kwargs)


class TestHandleQuery:
    def test_responds_with_valid_index(self, vehicle, ca):
        response = vehicle.handle_query(make_query(ca))
        assert response is not None
        assert 0 <= response.bit_index < 256

    def test_response_matches_logical_bit_array(self, vehicle, ca):
        response = vehicle.handle_query(make_query(ca))
        assert response.bit_index == vehicle.logical_bits.bit_for_rsu(3, 256)

    def test_answers_each_rsu_once_per_period(self, vehicle, ca):
        assert vehicle.handle_query(make_query(ca)) is not None
        assert vehicle.handle_query(make_query(ca)) is None  # repeat query
        assert vehicle.handle_query(make_query(ca, rsu_id=4)) is not None

    def test_start_period_resets(self, vehicle, ca):
        vehicle.handle_query(make_query(ca))
        vehicle.start_period()
        assert vehicle.handle_query(make_query(ca)) is not None

    def test_rejects_untrusted_certificate(self, vehicle):
        rogue = CertificateAuthority("rogue", seed=9)
        query = Query(rsu_id=3, certificate=rogue.issue(3), array_size=256)
        with pytest.raises(AuthenticationError):
            vehicle.handle_query(query)

    def test_rejects_expired_certificate(self, vehicle, ca):
        query = Query(
            rsu_id=3, certificate=ca.issue(3, not_after=10), array_size=256
        )
        with pytest.raises(AuthenticationError):
            vehicle.handle_query(query, now=11)

    def test_fresh_mac_per_response(self, ca, small_params):
        vehicle = Vehicle(
            9, 42, small_params, trust_anchor=ca.trust_anchor(), seed=2
        )
        macs = set()
        for rsu_id in range(3, 23):
            response = vehicle.handle_query(make_query(ca, rsu_id=rsu_id))
            macs.add(response.mac)
        assert len(macs) == 20  # one-time MACs never repeat

    def test_no_anchor_skips_verification(self, small_params):
        rogue = CertificateAuthority("rogue", seed=9)
        vehicle = Vehicle(9, 42, small_params, trust_anchor=None, seed=2)
        query = Query(rsu_id=3, certificate=rogue.issue(3), array_size=256)
        assert vehicle.handle_query(query) is not None

    def test_response_never_contains_identity(self, vehicle, ca):
        """The wire response carries only (mac, bit_index); neither
        equals or encodes the vehicle id."""
        response = vehicle.handle_query(make_query(ca))
        assert set(vars(response)) == {"mac", "bit_index"}
        assert response.mac != vehicle.vehicle_id

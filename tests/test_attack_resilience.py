"""Tests for the response-stuffing attack study."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.attack_resilience import run_attack_resilience


@pytest.fixture(scope="module")
def result():
    return run_attack_resilience(
        n_honest=8_000,
        attacker_fraction=0.01,
        duplicates_grid=(0, 5, 50),
        seed=23,
    )


class TestAttackResilience:
    def test_both_variants_present(self, result):
        variants = {o.variant for o in result.outcomes}
        assert variants == {"replay", "forgery"}

    def test_clean_reports_not_flagged(self, result):
        clean = [o for o in result.outcomes if o.duplicates_per_attacker == 0]
        assert all(not o.flagged for o in clean)

    def test_replay_detected(self, result):
        """Replay duplicates leave the bitmap near the honest level, so
        the counter runs away from the bitmap estimate and is flagged."""
        # At this scale 5 dups/attacker (~5% inflation) sits below the
        # 6-sigma threshold; 50 is flagged decisively.
        threshold = result.detection_threshold("replay")
        assert 0 < threshold <= 50
        heavy = [
            o for o in result.outcomes
            if o.variant == "replay" and o.duplicates_per_attacker == 50
        ]
        assert heavy[0].flagged
        assert heavy[0].bitmap_estimate_inflation < 0.05
        assert heavy[0].counter_inflation == pytest.approx(0.5)

    def test_forgery_not_detected(self, result):
        """Forged uniform indices are statistically honest: bitmap
        inflation tracks counter inflation and nothing is flagged —
        the documented limit of the cross-check."""
        assert result.detection_threshold("forgery") == -1
        heavy = [
            o for o in result.outcomes
            if o.variant == "forgery" and o.duplicates_per_attacker == 50
        ]
        assert heavy[0].bitmap_estimate_inflation == pytest.approx(
            heavy[0].counter_inflation, rel=0.1
        )

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            run_attack_resilience(attacker_fraction=1.5)

    def test_render(self, result):
        text = result.render()
        assert "Response-stuffing attack" in text
        assert "forgery" in text

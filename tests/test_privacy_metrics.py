"""Tests for the complementary privacy metrics."""

import numpy as np
import pytest

from repro.core.encoder import encode_passes
from repro.core.parameters import SchemeParameters
from repro.errors import ConfigurationError
from repro.privacy.metrics import (
    expected_anonymity_set,
    expected_coincidence_anonymity,
    report_index_entropy,
)
from repro.traffic.population import VehicleFleet


class TestReportIndexEntropy:
    def test_uniform_is_one(self):
        assert report_index_entropy(np.full(64, 10.0)) == pytest.approx(1.0)

    def test_degenerate_is_zero(self):
        counts = np.zeros(64)
        counts[3] = 100
        assert report_index_entropy(counts) == pytest.approx(0.0)

    def test_real_reports_are_near_uniform(self):
        """The masking scheme's whole point: indices look uniform."""
        params = SchemeParameters(s=2, load_factor=1.0, m_o=1 << 10, hash_seed=3)
        fleet = VehicleFleet.random(50_000, seed=1)
        m = 1 << 10
        encode_passes(fleet.ids, fleet.keys, 1, m, params)  # exercises the real path
        # Rebuild the index histogram from raw selection.
        from repro.hashing.logical_bitarray import select_indices

        idx = select_indices(fleet.ids, fleet.keys, 1, params.salts, params.m_o,
                             seed=params.hash_seed) & (m - 1)
        counts = np.bincount(idx, minlength=m)
        assert report_index_entropy(counts) > 0.99

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            report_index_entropy(np.array([1.0]))
        with pytest.raises(ConfigurationError):
            report_index_entropy(np.array([-1.0, 1.0]))
        with pytest.raises(ConfigurationError):
            report_index_entropy(np.zeros(4))


class TestExpectedAnonymitySet:
    def test_dense_array(self):
        # n = 4m: each set bit hides ~4/(1-e^-4) ~ 4.07 vehicles.
        value = expected_anonymity_set(4_000, 1_000)
        assert value == pytest.approx(4.0 / (1 - np.exp(-4.0)), rel=0.01)

    def test_sparse_array_approaches_one(self):
        assert expected_anonymity_set(10, 1_000_000) == pytest.approx(1.0, abs=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            expected_anonymity_set(0, 100)
        with pytest.raises(ConfigurationError):
            expected_anonymity_set(10, 1)


class TestCoincidenceAnonymity:
    def test_more_common_traffic_less_anonymity(self):
        low = expected_coincidence_anonymity(10_000, 100_000, 5_000, 2**15, 2**19, 2)
        high = expected_coincidence_anonymity(10_000, 100_000, 100, 2**15, 2**19, 2)
        assert high > low

    def test_no_common_traffic_infinite(self):
        value = expected_coincidence_anonymity(1_000, 1_000, 0, 2**10, 2**10, 2)
        assert value == float("inf")

    def test_larger_s_more_anonymity(self):
        s2 = expected_coincidence_anonymity(10_000, 100_000, 1_000, 2**15, 2**19, 2)
        s10 = expected_coincidence_anonymity(10_000, 100_000, 1_000, 2**15, 2**19, 10)
        assert s10 > s2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            expected_coincidence_anonymity(10, 10, 20, 64, 64, 2)
        with pytest.raises(ConfigurationError):
            expected_coincidence_anonymity(10, 10, 5, 64, 64, 0)
        with pytest.raises(ConfigurationError):
            expected_coincidence_anonymity(10, 10, 5, 1, 64, 2)

"""Tests for the binomial-model information analysis."""

import math

import pytest

from repro.accuracy.fisher import (
    cramer_rao_bound_binomial,
    fisher_information_binomial,
    super_efficiency,
)
from repro.errors import ConfigurationError

CASE = dict(n_x=10_000, n_y=100_000, n_c=3_000, m_x=131_072, m_y=2_097_152, s=2)


class TestFisherInformation:
    def test_positive(self):
        assert fisher_information_binomial(**CASE) > 0

    def test_closed_form(self):
        from repro.core.estimator import log_collision_ratio, q_intersection

        q = float(q_intersection(
            CASE["n_x"], CASE["n_y"], CASE["n_c"],
            CASE["m_x"], CASE["m_y"], CASE["s"],
        ))
        rho = log_collision_ratio(CASE["s"], CASE["m_y"])
        expected = CASE["m_y"] * (q * rho) ** 2 / (q * (1 - q))
        assert fisher_information_binomial(**CASE) == pytest.approx(
            expected, rel=1e-12
        )

    def test_information_grows_with_array(self):
        small = fisher_information_binomial(
            10_000, 100_000, 3_000, 32_768, 524_288, 2
        )
        large = fisher_information_binomial(**CASE)
        assert large > small

    def test_degenerate_rejected(self):
        with pytest.raises(ConfigurationError):
            # Hopeless saturation: q ~ 0.
            fisher_information_binomial(100_000, 100_000, 10, 128, 256, 2)


class TestSuperEfficiency:
    def test_real_variance_beats_binomial_crb(self):
        """The headline finding: the exact estimator variance is far
        below the binomial model's information limit, because the
        occupancy constraint de-noises U_c and the plug-in terms cancel
        shared fluctuation."""
        crb = cramer_rao_bound_binomial(**CASE)
        from repro.accuracy.variance import estimator_variance

        assert estimator_variance(**CASE) < crb

    def test_super_efficiency_band(self):
        value = super_efficiency(**CASE)
        assert 1.0 < value < 100.0

    def test_monte_carlo_confirms(self):
        """Empirical stddev is also below the binomial-CRB stddev —
        the super-efficiency is real, not an artifact of the exact
        variance formula."""
        from repro.accuracy.montecarlo import simulate_accuracy

        crb_std = math.sqrt(
            cramer_rao_bound_binomial(2_000, 8_000, 500, 8_192, 32_768, 2)
        )
        mc = simulate_accuracy(
            2_000, 8_000, 500, 8_192, 32_768, 2, repetitions=30, seed=7
        )
        assert mc.stddev * 500 < crb_std

"""Tests for the binomial moments and Taylor terms (Eqs. 12-31)."""

import math

import numpy as np
import pytest

from repro.accuracy.moments import mean_v, pair_means, var_v_binomial
from repro.accuracy.taylor import cov_ln, mean_ln_v, var_ln_v


class TestMoments:
    def test_mean_is_q(self):
        assert float(mean_v(100, 256)) == pytest.approx((1 - 1 / 256) ** 100)

    def test_variance_binomial_form(self):
        q = (1 - 1 / 256) ** 100
        assert float(var_v_binomial(100, 256)) == pytest.approx(
            q * (1 - q) / 256
        )

    def test_variance_zero_at_zero_volume(self):
        assert float(var_v_binomial(0, 64)) == pytest.approx(0.0)

    def test_pair_means_ordering(self):
        v_x, v_y, v_c = pair_means(100, 400, 50, 256, 1024, 2)
        # joint array has at least as many ones: V_c <= min(V_x, V_y)...
        # in expectation V_c <= V_x and V_c <= V_y.
        assert float(v_c) <= float(v_x) + 1e-12
        assert float(v_c) <= float(v_y) + 1e-12

    def test_vectorized(self):
        out = mean_v(np.array([1, 2, 3]), 64)
        assert out.shape == (3,)


class TestTaylor:
    def test_mean_ln_v_second_order_correction(self):
        w, var = 0.8, 0.001
        assert float(mean_ln_v(w, var)) == pytest.approx(
            math.log(w) - var / (2 * w**2)
        )

    def test_var_ln_v(self):
        w, var = 0.8, 0.001
        assert float(var_ln_v(w, var)) == pytest.approx(var / w**2)

    def test_cov_ln(self):
        assert float(cov_ln(0.5, 0.25, 0.01)) == pytest.approx(0.01 / 0.125)

    def test_taylor_against_simulation(self, rng):
        """E[ln V] and Var(ln V) from the Taylor map match sampled
        binomial fractions."""
        m, q = 4096, 0.7
        counts = rng.binomial(m, q, size=20_000)
        v = counts / m
        log_v = np.log(v)
        predicted_mean = float(mean_ln_v(q, q * (1 - q) / m))
        predicted_var = float(var_ln_v(q, q * (1 - q) / m))
        assert log_v.mean() == pytest.approx(predicted_mean, abs=3e-4)
        assert log_v.var() == pytest.approx(predicted_var, rel=0.05)

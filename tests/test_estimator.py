"""Tests for the occupancy model and MLE estimator (Eqs. 5-18)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bitarray import BitArray
from repro.core.encoder import encode_passes
from repro.core.estimator import (
    ZeroFractionPolicy,
    estimate_from_fractions,
    estimate_intersection,
    estimate_point_volume,
    log_collision_ratio,
    q_intersection,
    q_point,
)
from repro.core.parameters import SchemeParameters
from repro.core.reports import RsuReport
from repro.errors import ConfigurationError, EstimationError, SaturatedArrayError
from repro.traffic.random_workload import make_pair_population


class TestQPoint:
    def test_matches_definition(self):
        assert float(q_point(10, 100)) == pytest.approx((1 - 1 / 100) ** 10)

    def test_zero_volume(self):
        assert float(q_point(0, 64)) == 1.0

    def test_monotone_decreasing_in_volume(self):
        values = q_point(np.array([0, 10, 100, 1000]), 256)
        assert np.all(np.diff(values) < 0)

    def test_rejects_tiny_array(self):
        with pytest.raises(ConfigurationError):
            q_point(5, 1)


class TestLogCollisionRatio:
    def test_positive(self):
        assert log_collision_ratio(2, 1024) > 0

    def test_approximation_one_over_s_m(self):
        # ln(rho) ~ 1/(s m_y) for large m_y.
        for s in (2, 5, 10):
            value = log_collision_ratio(s, 2**20)
            assert value == pytest.approx(1 / (s * 2**20), rel=1e-3)

    def test_s_one_maximal_signal(self):
        # s=1: every common car collides; signal is -ln(1 - 1/m_y).
        assert log_collision_ratio(1, 256) == pytest.approx(
            -math.log1p(-1 / 256)
        )

    @pytest.mark.parametrize("bad", [(0, 16), (2, 1), (16, 16)])
    def test_invalid_arguments(self, bad):
        s, m = bad
        with pytest.raises(ConfigurationError):
            log_collision_ratio(s, m)


class TestQIntersection:
    def test_reduces_to_product_when_no_common(self):
        q = float(q_intersection(50, 80, 0, 64, 256, 2))
        assert q == pytest.approx(float(q_point(50, 64) * q_point(80, 256)))

    def test_common_vehicles_increase_zero_fraction(self):
        base = float(q_intersection(50, 80, 0, 64, 256, 2))
        more = float(q_intersection(50, 80, 40, 64, 256, 2))
        assert more > base

    def test_equation9_closed_form(self):
        n_x, n_y, n_c, m_x, m_y, s = 100, 200, 30, 64, 256, 2
        rho = (1 - (s - 1) / (s * m_y)) / (1 - 1 / m_y)
        expected = (
            (1 - 1 / m_x) ** n_x * (1 - 1 / m_y) ** n_y * rho**n_c
        )
        assert float(q_intersection(n_x, n_y, n_c, m_x, m_y, s)) == pytest.approx(
            expected, rel=1e-12
        )


class TestEstimateFromFractions:
    def test_inverts_the_model_exactly(self):
        """Feeding the model's own expected fractions returns n_c."""
        n_x, n_y, n_c, m_x, m_y, s = 1000, 5000, 300, 4096, 16384, 2
        v_x = float(q_point(n_x, m_x))
        v_y = float(q_point(n_y, m_y))
        v_c = float(q_intersection(n_x, n_y, n_c, m_x, m_y, s))
        assert estimate_from_fractions(v_c, v_x, v_y, m_y, s) == pytest.approx(
            n_c, rel=1e-9
        )

    @given(
        st.integers(min_value=0, max_value=2000),
        st.sampled_from([2, 5, 10]),
    )
    @settings(max_examples=40)
    def test_round_trip_property(self, n_c, s):
        n_x, n_y, m_x, m_y = 4000, 20_000, 16_384, 65_536
        v_x = float(q_point(n_x, m_x))
        v_y = float(q_point(n_y, m_y))
        v_c = float(q_intersection(n_x, n_y, n_c, m_x, m_y, s))
        estimate = estimate_from_fractions(v_c, v_x, v_y, m_y, s)
        assert estimate == pytest.approx(n_c, abs=1e-6)

    def test_saturation_raises(self):
        with pytest.raises(SaturatedArrayError):
            estimate_from_fractions(0.0, 0.5, 0.5, 64, 2)

    def test_fraction_above_one_rejected(self):
        with pytest.raises(EstimationError):
            estimate_from_fractions(0.5, 1.5, 0.5, 64, 2)


class TestEstimateIntersection:
    def _reports(self, n_x, n_y, n_c, m_x, m_y, s, seed=0):
        params = SchemeParameters(s=s, load_factor=1.0, m_o=max(m_x, m_y),
                                  hash_seed=seed)
        pop = make_pair_population(n_x, n_y, n_c, seed=seed)
        ids_x, keys_x = pop.passes_at_x()
        ids_y, keys_y = pop.passes_at_y()
        rx = encode_passes(ids_x, keys_x, 1, m_x, params)
        ry = encode_passes(ids_y, keys_y, 2, m_y, params)
        return rx, ry

    def test_estimates_close_to_truth(self):
        rx, ry = self._reports(5_000, 20_000, 1_000, 16_384, 65_536, 2, seed=3)
        estimate = estimate_intersection(rx, ry, 2)
        assert estimate.error_ratio(1_000) < 0.30

    def test_order_insensitive(self):
        rx, ry = self._reports(2_000, 8_000, 500, 8_192, 32_768, 2, seed=4)
        a = estimate_intersection(rx, ry, 2)
        b = estimate_intersection(ry, rx, 2)
        assert a.value == pytest.approx(b.value)
        assert a.m_x <= a.m_y and b.m_x <= b.m_y

    def test_period_mismatch_rejected(self):
        rx, ry = self._reports(100, 100, 10, 256, 256, 2)
        ry = RsuReport(rsu_id=ry.rsu_id, counter=ry.counter, bits=ry.bits, period=5)
        with pytest.raises(EstimationError):
            estimate_intersection(rx, ry, 2)

    def test_saturated_policy_raise(self):
        full = RsuReport(1, 10, BitArray.from_indices(4, [0, 1, 2, 3]))
        other = RsuReport(2, 10, BitArray(4))
        with pytest.raises(SaturatedArrayError):
            estimate_intersection(full, other, 2)

    def test_saturated_policy_clamp_returns_finite(self):
        full = RsuReport(1, 10, BitArray.from_indices(4, [0, 1, 2, 3]))
        other = RsuReport(2, 10, BitArray.from_indices(4, [1]))
        estimate = estimate_intersection(
            full, other, 2, policy=ZeroFractionPolicy.CLAMP
        )
        assert math.isfinite(estimate.value)

    def test_pair_estimate_metadata(self):
        rx, ry = self._reports(1_000, 4_000, 200, 4_096, 16_384, 2, seed=9)
        estimate = estimate_intersection(rx, ry, 2)
        assert (estimate.m_x, estimate.m_y) == (4_096, 16_384)
        assert (estimate.n_x, estimate.n_y) == (1_000, 4_000)
        assert estimate.s == 2
        assert estimate.clamped_nonnegative >= 0.0

    def test_error_ratio_requires_positive_truth(self):
        rx, ry = self._reports(100, 100, 10, 256, 256, 2)
        estimate = estimate_intersection(rx, ry, 2)
        with pytest.raises(EstimationError):
            estimate.error_ratio(0)


class TestEstimatePointVolume:
    def test_recovers_counter(self):
        params = SchemeParameters(s=2, load_factor=1.0, m_o=1 << 14, hash_seed=2)
        ids = np.arange(3_000, dtype=np.uint64)
        keys = ids * np.uint64(31) + np.uint64(5)
        report = encode_passes(ids, keys, 1, 1 << 14, params)
        implied = estimate_point_volume(report)
        assert implied == pytest.approx(3_000, rel=0.1)

    def test_saturated(self):
        report = RsuReport(1, 100, BitArray.from_indices(4, [0, 1, 2, 3]))
        with pytest.raises(SaturatedArrayError):
            estimate_point_volume(report)
        clamped = estimate_point_volume(report, policy=ZeroFractionPolicy.CLAMP)
        assert math.isfinite(clamped)

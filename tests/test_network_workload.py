"""Integration tests: road network -> workload -> scheme -> estimate."""


from repro.core.estimator import ZeroFractionPolicy
from repro.core.scheme import VlmScheme
from repro.traffic.network_workload import NetworkWorkload, sioux_falls_workload
from repro.roadnet.graph import Arc, RoadNetwork
from repro.roadnet.trips import TripTable


class TestNetworkWorkload:
    def test_build_small(self):
        arcs = [Arc(1, 2), Arc(2, 1), Arc(2, 3), Arc(3, 2)]
        network = RoadNetwork("line", arcs)
        trips = TripTable({(1, 3): 100, (3, 1): 50, (1, 2): 30})
        workload = NetworkWorkload.build(network, trips, seed=1)
        assert workload.volumes() == {1: 180, 2: 180, 3: 150}
        assert workload.common_volumes()[(1, 3)] == 150
        passes = workload.passes()
        assert {node: ids.size for node, (ids, _) in passes.items()} == (
            workload.volumes()
        )

    def test_sioux_falls_default(self):
        workload = sioux_falls_workload(total_trips=20_000, seed=2)
        assert workload.network.num_nodes == 24
        volumes = workload.volumes()
        assert max(volumes, key=volumes.get) == 10
        assert sum(workload.plan.trips.pairs().__next__()[1:]) >= 0  # iterable

    def test_end_to_end_measurement_accuracy(self):
        """Full pipeline: gravity trips -> routes -> encode -> decode;
        heavy pairs measured within ~15%."""
        workload = sioux_falls_workload(total_trips=40_000, seed=3)
        volumes = workload.volumes()
        scheme = VlmScheme(
            volumes,
            s=2,
            load_factor=8.0,
            hash_seed=7,
            policy=ZeroFractionPolicy.CLAMP,
        )
        scheme.run_period(workload.passes())
        truth = workload.common_volumes()
        heavy = sorted(truth, key=truth.get, reverse=True)[:5]
        for a, b in heavy:
            estimate = scheme.decoder.pair_estimate(a, b)
            assert estimate.error_ratio(truth[(a, b)]) < 0.15

"""Tests for BPR latency and MSA equilibrium assignment."""

import pytest

from repro.errors import CalibrationError, NetworkDataError
from repro.roadnet.congestion import (
    assign_equilibrium,
    bpr_travel_time,
)
from repro.roadnet.graph import Arc, RoadNetwork
from repro.roadnet.sioux_falls import sioux_falls_network
from repro.roadnet.trips import TripTable
from repro.roadnet.volumes import node_volumes


class TestBprTravelTime:
    def test_free_flow_at_zero(self):
        assert bpr_travel_time(10.0, 0.0, 1_000.0) == pytest.approx(10.0)

    def test_at_capacity(self):
        # t = t0 (1 + 0.15) at v = c with defaults.
        assert bpr_travel_time(10.0, 1_000.0, 1_000.0) == pytest.approx(11.5)

    def test_monotone_in_flow(self):
        times = [bpr_travel_time(10.0, v, 1_000.0) for v in (0, 500, 1_000, 2_000)]
        assert times == sorted(times)

    def test_invalid_inputs(self):
        with pytest.raises(NetworkDataError):
            bpr_travel_time(0, 1, 1)
        with pytest.raises(NetworkDataError):
            bpr_travel_time(1, -1, 1)


@pytest.fixture
def braess_like():
    """Two parallel routes 1->4: fast-but-tight via 2, slow-but-wide
    via 3.  Congestion must split traffic across both."""
    arcs = [
        Arc(1, 2, free_flow_time=1.0, capacity=300.0),
        Arc(2, 4, free_flow_time=1.0, capacity=300.0),
        Arc(1, 3, free_flow_time=1.6, capacity=10_000.0),
        Arc(3, 4, free_flow_time=1.6, capacity=10_000.0),
    ]
    return RoadNetwork("parallel", arcs)


class TestAssignEquilibrium:
    def test_uncongested_matches_shortest_path(self, braess_like):
        trips = TripTable({(1, 4): 10})
        result = assign_equilibrium(braess_like, trips)
        assert result.plan.route(1, 4) == [1, 2, 4]

    def test_congestion_diverts_flow(self, braess_like):
        """With demand far above the fast route's capacity, flow
        spills onto the wide route."""
        trips = TripTable({(1, 4): 3_000})
        result = assign_equilibrium(braess_like, trips, max_iterations=100)
        flow_fast = result.link_flows[(1, 2)]
        flow_wide = result.link_flows[(1, 3)]
        assert flow_wide > 0
        assert flow_fast + flow_wide == pytest.approx(3_000, rel=1e-6)
        # Travel times roughly equalize at user equilibrium.
        t_fast = result.link_times[(1, 2)] + result.link_times[(2, 4)]
        t_wide = result.link_times[(1, 3)] + result.link_times[(3, 4)]
        assert t_fast == pytest.approx(t_wide, rel=0.35)

    def test_converges_and_reports_gap(self, braess_like):
        trips = TripTable({(1, 4): 3_000})
        result = assign_equilibrium(
            braess_like, trips, max_iterations=200, tolerance=1e-4
        )
        # MSA's 1/k steps converge slowly; 200 iterations lands in the
        # few-per-mille band.
        assert result.relative_gap < 5e-3
        assert result.iterations <= 200
        assert result.total_travel_time() > 0

    def test_invalid_iterations(self, braess_like):
        with pytest.raises(CalibrationError):
            assign_equilibrium(braess_like, TripTable({(1, 4): 1}), max_iterations=0)

    def test_sioux_falls_congested_volumes_still_center_heavy(self):
        """On the real network with tight capacities, the equilibrium
        plan remains usable by the measurement pipeline."""
        network = sioux_falls_network(capacity=6_000.0)
        trips = TripTable({(1, 20): 4_000, (20, 1): 4_000, (13, 8): 3_000})
        result = assign_equilibrium(network, trips, max_iterations=30)
        volumes = node_volumes(result.plan)
        assert volumes[1] >= 8_000  # origin/destination traffic counted
        assert sum(volumes.values()) > 0

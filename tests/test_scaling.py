"""Tests for the city-scale scaling study."""

import math

import pytest

from repro.experiments.scaling import run_scaling


@pytest.fixture(scope="module")
def result():
    return run_scaling(
        city_sizes=((2, 6), (3, 8)), trips_per_rsu=2_000, seed=41
    )


class TestRunScaling:
    def test_point_per_city(self, result):
        assert len(result.points) == 2
        assert result.points[0].rsus == 13
        assert result.points[1].rsus == 25

    def test_pairs_are_complete(self, result):
        for p in result.points:
            assert p.pairs_measured == p.rsus * (p.rsus - 1) // 2

    def test_costs_grow_with_city(self, result):
        small, large = result.points
        assert large.matrix_seconds >= small.matrix_seconds * 0.5
        assert large.total_memory_mib > small.total_memory_mib

    def test_accuracy_stays_usable(self, result):
        for p in result.points:
            assert math.isfinite(p.median_error)
            assert p.median_error < 0.25

    def test_render(self, result):
        text = result.render()
        assert "scaling" in text
        assert "median |err| %" in text

"""Tests for the Table I experiment."""

import pytest

from repro.experiments.table1 import run_table1
from repro.traffic.scenarios import TABLE1_PAIRS


@pytest.fixture(scope="module")
def result():
    # A few repetitions on the two extreme pairs keeps CI fast while
    # exercising the full pipeline at paper scale.
    return run_table1(
        pairs=(TABLE1_PAIRS[0], TABLE1_PAIRS[-1]), repetitions=6, seed=3
    )


class TestRunTable1:
    def test_rows_cover_requested_pairs(self, result):
        assert [row.rsu_x for row in result.rows] == [15, 3]

    def test_parameters_meet_privacy_protocol(self, result):
        # f̄ chosen for privacy >= 0.5 at s=2 lands near the paper's 15.
        assert 10.0 < result.load_factor < 17.0
        # baseline m is a power of two below f_max * n_min.
        assert result.baseline_m & (result.baseline_m - 1) == 0

    def test_vlm_accuracy_on_comparable_pair(self, result):
        row = result.rows[0]  # d ~ 2.1
        assert row.vlm_error < 0.05

    def test_vlm_beats_baseline_in_aggregate(self, result):
        """Per-run error means are the stable comparison (Section V's
        stddev ratio is ~2-6x in VLM's favour at these rows)."""
        vlm = sum(row.vlm_mean_run_error for row in result.rows)
        base = sum(row.baseline_mean_run_error for row in result.rows)
        assert vlm < base

    def test_raw_estimates_recorded(self, result):
        for row in result.rows:
            assert len(row.vlm_estimates) == result.repetitions
            assert len(row.baseline_estimates) == result.repetitions

    def test_render(self, result):
        text = result.render()
        assert "Table I" in text
        assert "451,000" in text
        assert "r (VLM) %" in text

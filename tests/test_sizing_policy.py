"""Property tests for the SizingPolicy implementations.

Three laws every policy must obey (checked with Hypothesis rather than
hand-picked volumes):

* ``size_for`` always answers a power of two, at least the documented
  minimum;
* ``size_for`` is monotone in the volume — more traffic never gets a
  smaller array;
* the adaptive guards are honoured: a size inside the hysteresis band
  is held, a proposal never moves more than ``max_step`` octaves, and
  iterating ``propose`` reaches the band in finitely many periods.

The second half pins the multi-period *size trajectory* and the
decoded matrices: identical for any worker count, any executor, and
both bit-storage backends.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SchemeConfig
from repro.core.estimator import ZeroFractionPolicy
from repro.core.sizing import (
    MIN_ARRAY_SIZE,
    AdaptiveSizing,
    PrivacyOptimalSizing,
    SizingPolicy,
    StaticSizing,
)
from repro.experiments.adaptive_sizing import run_adaptive_matrix
from repro.service.runtime import DeploymentSpec

volumes = st.floats(min_value=0.0, max_value=1e7, allow_nan=False)
load_factors = st.floats(min_value=0.05, max_value=64.0, allow_nan=False)
octave_sizes = st.integers(min_value=1, max_value=24).map(lambda o: 2**o)

POLICIES = [
    StaticSizing(3.0),
    StaticSizing(0.5),
    PrivacyOptimalSizing(2),
    AdaptiveSizing(target=PrivacyOptimalSizing(2)),
    AdaptiveSizing(target=StaticSizing(3.0), min_size=8, max_size=2**16),
]


def _is_pow2(n: int) -> bool:
    return n >= 1 and n & (n - 1) == 0


class TestSizeForLaws:
    @pytest.mark.parametrize("policy", POLICIES)
    @given(volume=volumes)
    @settings(max_examples=50)
    def test_power_of_two_at_least_minimum(self, policy, volume):
        size = policy.size_for(volume)
        assert _is_pow2(size)
        assert size >= MIN_ARRAY_SIZE

    @pytest.mark.parametrize("policy", POLICIES)
    @given(a=volumes, b=volumes)
    @settings(max_examples=50)
    def test_monotone_in_volume(self, policy, a, b):
        low, high = sorted((a, b))
        assert policy.size_for(low) <= policy.size_for(high)

    @given(volume=st.floats(min_value=1.0, max_value=1e7), factor=load_factors)
    @settings(max_examples=50)
    def test_static_is_sufficient_and_tight(self, volume, factor):
        size = StaticSizing(factor).size_for(volume)
        assert size >= min(volume * factor, size)  # never undershoots
        assert size >= volume * factor or size == MIN_ARRAY_SIZE
        # One doubling of slack at most (power-of-two snapping).
        if size > MIN_ARRAY_SIZE:
            assert size < 2 * volume * factor

    @pytest.mark.parametrize("policy", POLICIES)
    def test_satisfies_protocol(self, policy):
        assert isinstance(policy, SizingPolicy)


class TestAdaptiveGuards:
    policy = AdaptiveSizing(
        target=StaticSizing(3.0), hysteresis=1, max_step=2, max_size=2**20
    )

    @given(current=octave_sizes, volume=volumes)
    @settings(max_examples=100)
    def test_proposal_is_power_of_two_within_clamps(self, current, volume):
        proposed = self.policy.propose(current, volume)
        assert _is_pow2(proposed)
        assert self.policy.min_size <= proposed <= self.policy.max_size

    @given(current=octave_sizes, volume=volumes)
    @settings(max_examples=100)
    def test_rate_limit(self, current, volume):
        clamped = self.policy.clamp(current)
        proposed = self.policy.propose(current, volume)
        step = abs(proposed.bit_length() - clamped.bit_length())
        assert step <= self.policy.max_step

    @given(current=octave_sizes, volume=volumes)
    @settings(max_examples=100)
    def test_hysteresis_holds_in_band(self, current, volume):
        clamped = self.policy.clamp(current)
        if self.policy.in_band(clamped, volume):
            assert self.policy.propose(clamped, volume) == clamped

    @given(current=octave_sizes, volume=volumes)
    @settings(max_examples=100)
    def test_proposal_never_overshoots(self, current, volume):
        """A move lands between the current size and the target."""
        clamped = self.policy.clamp(current)
        proposed = self.policy.propose(clamped, volume)
        desired = self.policy.size_for(volume)
        assert min(clamped, desired) <= proposed <= max(clamped, desired)

    @given(current=octave_sizes, volume=volumes)
    @settings(max_examples=100)
    def test_iterating_propose_reaches_the_band(self, current, volume):
        size = self.policy.clamp(current)
        for _ in range(64):
            if self.policy.in_band(size, volume):
                break
            size = self.policy.propose(size, volume)
        assert self.policy.in_band(size, volume)

    @given(current=octave_sizes, volume=volumes)
    @settings(max_examples=50)
    def test_deterministic(self, current, volume):
        twin = AdaptiveSizing(
            target=StaticSizing(3.0),
            hysteresis=1,
            max_step=2,
            max_size=2**20,
        )
        assert twin.propose(current, volume) == self.policy.propose(
            current, volume
        )


class TestTrajectoryDeterminism:
    """ISSUE acceptance: identical size trajectories and bit-identical
    matrices at any worker count, on any executor, on both backends."""

    SPEC = dict(total_trips=900, seed=13, periods=3, drift=-0.5)

    @pytest.fixture(scope="class")
    def golden(self):
        return run_adaptive_matrix(**self.SPEC, workers=1, executor="serial")

    @pytest.mark.parametrize("workers", [2, 5])
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_same_everything_across_workers(self, golden, workers, executor):
        result = run_adaptive_matrix(
            **self.SPEC, workers=workers, executor=executor
        )
        assert result.size_trajectory == golden.size_trajectory
        assert len(result.mean_errors) == len(golden.mean_errors)
        for ours, theirs in zip(result.mean_errors, golden.mean_errors):
            assert ours == theirs or (ours != ours and theirs != theirs)
        assert result.bit_identical

    def test_golden_is_bit_identical(self, golden):
        # run_adaptive_matrix itself re-checks the final day serially
        # and on the legacy backend.
        assert golden.serial_identical
        assert golden.engines_identical

    @pytest.mark.parametrize("engine", ["packed", "legacy"])
    def test_trajectory_independent_of_backend(self, engine):
        spec = DeploymentSpec(
            config=SchemeConfig(
                s=2, policy=ZeroFractionPolicy.CLAMP, engine=engine
            ),
            adaptive=True,
            **self.SPEC,
        )
        baseline = DeploymentSpec(adaptive=True, **self.SPEC)
        assert spec.size_trajectory() == baseline.size_trajectory()

"""Tests for the ASCII scatter plot renderer."""

import numpy as np
import pytest

from repro.utils.asciiplot import scatter_plot


class TestScatterPlot:
    def test_points_on_diagonal_render_as_hash(self):
        x = np.linspace(100, 1000, 20)
        text = scatter_plot(x, x, width=40, height=12)
        assert "#" in text  # points overlay the reference line

    def test_off_diagonal_points_render_as_star(self):
        x = np.linspace(100, 1000, 20)
        text = scatter_plot(x, x * 0.2, width=40, height=12)
        assert "*" in text

    def test_title_and_labels(self):
        text = scatter_plot([1, 2], [1, 2], title="T", x_label="a", y_label="b")
        assert text.splitlines()[0] == "T"
        assert "x: a, y: b" in text

    def test_clipping_marks_outliers(self):
        x = [100.0, 200.0, 300.0]
        y = [100.0, 200.0, 10_000.0]
        text = scatter_plot(x, y, clip_factor=2.0)
        assert "^" in text
        assert "clipped" in text

    def test_dimensions(self):
        text = scatter_plot([1, 2], [1, 2], width=30, height=10)
        rows = [line for line in text.splitlines() if "|" in line]
        assert len(rows) == 10
        assert all(len(line.split("|", 1)[1]) == 30 for line in rows)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            scatter_plot([1, 2], [1])
        with pytest.raises(ValueError):
            scatter_plot([], [])
        with pytest.raises(ValueError):
            scatter_plot([1], [1], width=4)

    def test_no_diagonal(self):
        text = scatter_plot([1.0], [1.0], diagonal=False)
        assert "." not in text.split("\n")[1]

    def test_negative_values_supported(self):
        text = scatter_plot([100, 200], [-50, 150])
        assert "*" in text

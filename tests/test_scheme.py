"""End-to-end tests for the VlmScheme facade."""

import pytest

from repro.core.scheme import VlmScheme
from repro.errors import ConfigurationError
from repro.traffic.random_workload import make_pair_population


class TestConfiguration:
    def test_sizes_follow_rule(self):
        scheme = VlmScheme({1: 10_000, 2: 500_000}, s=2, load_factor=3.0)
        assert scheme.array_size(1) == 32_768
        assert scheme.array_size(2) == 2_097_152
        assert scheme.m_o == 2_097_152

    def test_empty_volumes_rejected(self):
        with pytest.raises(ConfigurationError):
            VlmScheme({})

    def test_unknown_rsu(self):
        scheme = VlmScheme({1: 100})
        with pytest.raises(ConfigurationError):
            scheme.array_size(2)

    def test_rsu_ids_sorted(self):
        scheme = VlmScheme({5: 100, 1: 100, 3: 100})
        assert scheme.rsu_ids == (1, 3, 5)

    def test_m_o_grows_past_s(self):
        # Tiny volumes must not leave m_o <= s.
        scheme = VlmScheme({1: 1, 2: 1}, s=10, load_factor=0.5)
        assert scheme.m_o > 10

    def test_properties(self):
        scheme = VlmScheme({1: 100}, s=5, load_factor=4.0)
        assert scheme.s == 5
        assert scheme.load_factor == 4.0


class TestEndToEnd:
    def test_measure_close_to_truth(self):
        pop = make_pair_population(8_000, 40_000, 2_000, seed=2)
        scheme = VlmScheme(pop.volumes(), s=2, load_factor=8.0, hash_seed=5)
        reports = scheme.encode(pop.passes())
        estimate = scheme.measure(reports[pop.rsu_x], reports[pop.rsu_y])
        assert estimate.error_ratio(pop.n_c) < 0.25

    def test_run_period_feeds_decoder(self):
        pop = make_pair_population(4_000, 8_000, 1_000, seed=3)
        scheme = VlmScheme(pop.volumes(), s=2, load_factor=8.0, hash_seed=6)
        scheme.run_period(pop.passes())
        estimate = scheme.decoder.pair_estimate(pop.rsu_x, pop.rsu_y)
        assert estimate.error_ratio(pop.n_c) < 0.35

    def test_counters_are_exact(self):
        pop = make_pair_population(1_000, 3_000, 500, seed=4)
        scheme = VlmScheme(pop.volumes(), s=2, load_factor=4.0)
        reports = scheme.run_period(pop.passes())
        assert reports[pop.rsu_x].counter == pop.n_x
        assert reports[pop.rsu_y].counter == pop.n_y

    def test_hash_seed_changes_arrays_not_counters(self):
        pop = make_pair_population(1_000, 1_000, 100, seed=5)
        a = VlmScheme(pop.volumes(), s=2, load_factor=4.0, hash_seed=1)
        b = VlmScheme(pop.volumes(), s=2, load_factor=4.0, hash_seed=2)
        ra = a.encode(pop.passes())[pop.rsu_x]
        rb = b.encode(pop.passes())[pop.rsu_x]
        assert ra.counter == rb.counter
        assert ra.bits != rb.bits

"""Tests for the closed-form privacy analysis (Eqs. 37-43)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.privacy.formulas import (
    preserved_privacy,
    prob_both_set,
    prob_e_x,
    prob_e_y,
)


class TestProbBothSet:
    def test_in_unit_interval(self):
        p = float(prob_both_set(1000, 5000, 100, 2048, 8192, 2))
        assert 0.0 <= p <= 1.0

    def test_empty_arrays_never_coincide(self):
        assert float(prob_both_set(0, 0, 0, 64, 64, 2)) == pytest.approx(0.0)

    def test_more_common_cars_more_coincidences(self):
        low = float(prob_both_set(1000, 1000, 0, 4096, 4096, 2))
        high = float(prob_both_set(1000, 1000, 800, 4096, 4096, 2))
        assert high > low

    def test_matches_direct_sum_over_ns(self):
        """The closed form (Eq. 40) equals the explicit binomial sum
        over n_s (Eqs. 37-39)."""
        from scipy.stats import binom

        n_x, n_y, n_c, m_x, m_y, s = 60, 90, 20, 64, 256, 3
        total = 0.0
        for z in range(n_c + 1):
            q4 = (1 - 1 / m_y) ** z
            q5 = 1 - (1 - (1 - 1 / m_x) ** (n_x - z)) * (
                1 - (1 - 1 / m_y) ** (n_y - z)
            )
            total += q4 * q5 * binom.pmf(z, n_c, 1 / s)
        closed = 1.0 - float(prob_both_set(n_x, n_y, n_c, m_x, m_y, s))
        assert closed == pytest.approx(total, rel=1e-9)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            prob_both_set(10, 10, 20, 64, 64, 2)  # n_c > n_x
        with pytest.raises(ConfigurationError):
            prob_both_set(10, 10, 5, 1, 64, 2)  # m_x <= 1
        with pytest.raises(ConfigurationError):
            prob_both_set(10, 10, 5, 64, 64, 0)  # s < 1


class TestEventProbabilities:
    def test_e_x_closed_form(self):
        n_x, n_c, m_x = 100, 30, 256
        expected = (1 - 1 / m_x) ** n_c - (1 - 1 / m_x) ** n_x
        assert float(prob_e_x(n_x, n_c, m_x)) == pytest.approx(expected, rel=1e-10)

    def test_e_y_symmetric(self):
        assert float(prob_e_y(100, 30, 256)) == pytest.approx(
            float(prob_e_x(100, 30, 256))
        )

    def test_nonnegative(self):
        assert float(prob_e_x(100, 100, 64)) == pytest.approx(0.0)


class TestPreservedPrivacy:
    @given(
        st.integers(min_value=1, max_value=5_000),
        st.integers(min_value=1, max_value=5_000),
        st.floats(min_value=0.0, max_value=1.0),
        st.sampled_from([2, 5, 10]),
        st.sampled_from([256, 1024, 8192]),
        st.sampled_from([1, 4, 16]),
    )
    @settings(max_examples=60)
    def test_always_a_probability(self, n_x, n_y, frac, s, m_x, ratio):
        n_c = int(frac * min(n_x, n_y))
        p = float(preserved_privacy(n_x, n_y, n_c, m_x, m_x * ratio, s))
        assert 0.0 <= p <= 1.0

    def test_equal_sizes_reduce_to_baseline_formula(self):
        """With m_x = m_y the paper says Eq. 43 collapses to [9]'s
        formula; verify against the directly coded special case."""
        n_x, n_y, n_c, m, s = 2000, 3000, 400, 8192, 2
        p = float(preserved_privacy(n_x, n_y, n_c, m, m, s))
        # [9]'s formula: same expression with a single m.
        q = 1 - 1 / m
        c4 = (1 / s) + (1 - 1 / s)
        c5 = (1 / s) / q + (1 - 1 / s)
        p_not_a = q**n_x * c4**n_c + q**n_y - q ** (n_x + n_y) * c5**n_c
        expected = ((q**n_c - q**n_x) * (q**n_c - q**n_y)) / (1 - p_not_a)
        assert p == pytest.approx(expected, rel=1e-9)

    def test_larger_s_improves_privacy_at_high_load(self):
        # At f = 50 (the overloaded regime) privacy grows with s
        # (paper Fig. 2: "privacy suffers most for small values of s").
        n, m = 10_000, 500_000
        ps = [
            float(preserved_privacy(n, n, 0.1 * n, m, m, s)) for s in (2, 5, 10)
        ]
        assert ps[0] < ps[1] < ps[2]

    def test_unfolding_improves_privacy_for_unequal_traffic(self):
        """Paper Section VI-B: at f̄ = 3 the optimal privacy for
        n_y = 10 n_x exceeds the equal-traffic one."""
        n_x = 10_000
        f = 3.0
        equal = float(
            preserved_privacy(n_x, n_x, 0.1 * n_x, f * n_x, f * n_x, 5)
        )
        skewed = float(
            preserved_privacy(n_x, 10 * n_x, 0.1 * n_x, f * n_x, f * 10 * n_x, 5)
        )
        assert skewed > equal

    def test_vectorized_over_m(self):
        out = preserved_privacy(
            1000, 1000, 100, np.array([512.0, 1024.0]), np.array([512.0, 1024.0]), 2
        )
        assert out.shape == (2,)

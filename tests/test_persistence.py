"""Tests for server-state persistence."""

import pytest

from repro.core.encoder import encode_passes
from repro.core.parameters import SchemeParameters
from repro.core.sizing import StaticSizing
from repro.errors import ConfigurationError
from repro.traffic.population import VehicleFleet
from repro.vcps.history import VolumeHistory
from repro.vcps.persistence import load_server, save_server
from repro.vcps.server import CentralServer


@pytest.fixture
def populated_server():
    server = CentralServer(
        2, StaticSizing(6.0), history=VolumeHistory({1: 900, 2: 2_100})
    )
    params = SchemeParameters(s=2, load_factor=6.0, m_o=1 << 14, hash_seed=5)
    fleet = VehicleFleet.random(3_000, seed=5)
    for period in (0, 1):
        r1 = encode_passes(
            fleet.ids[:1_000], fleet.keys[:1_000], 1, 1 << 13, params,
            period=period,
        )
        r2 = encode_passes(
            fleet.ids[500:3_000], fleet.keys[500:3_000], 2, 1 << 14, params,
            period=period,
        )
        server.receive_reports([r1, r2])
    return server


class TestRoundTrip:
    def test_reports_restored_bit_exact(self, populated_server, tmp_path):
        save_server(populated_server, tmp_path / "state")
        restored = load_server(tmp_path / "state")
        for period in (0, 1):
            for rsu in (1, 2):
                original = populated_server.decoder.report_for(rsu, period)
                loaded = restored.decoder.report_for(rsu, period)
                assert loaded.bits == original.bits
                assert loaded.counter == original.counter

    def test_estimates_identical(self, populated_server, tmp_path):
        save_server(populated_server, tmp_path / "state")
        restored = load_server(tmp_path / "state")
        for period in (0, 1):
            a = populated_server.point_to_point(1, 2, period)
            b = restored.point_to_point(1, 2, period)
            assert a.value == pytest.approx(b.value)

    def test_history_and_config_restored(self, populated_server, tmp_path):
        save_server(populated_server, tmp_path / "state")
        restored = load_server(tmp_path / "state")
        assert restored.s == populated_server.s
        assert restored.sizing.load_factor == 6.0
        assert restored.history.known_rsus() == pytest.approx(
            populated_server.history.known_rsus()
        )
        assert restored.next_period_sizes() == (
            populated_server.next_period_sizes()
        )

    def test_resaving_overwrites(self, populated_server, tmp_path):
        root = save_server(populated_server, tmp_path / "state")
        save_server(populated_server, root)  # idempotent
        restored = load_server(root)
        assert len(restored.decoder.rsu_ids(0)) == 2


class TestFailureModes:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ConfigurationError, match="manifest"):
            load_server(tmp_path)

    def test_wrong_version(self, populated_server, tmp_path):
        root = save_server(populated_server, tmp_path / "state")
        manifest = root / "manifest.json"
        manifest.write_text(manifest.read_text().replace('"format_version": 1', '"format_version": 99'))
        with pytest.raises(ConfigurationError, match="format"):
            load_server(root)

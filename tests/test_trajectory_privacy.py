"""Tests for trajectory-level privacy."""

import pytest

from repro.errors import ConfigurationError, NetworkDataError
from repro.privacy.trajectory import route_privacy

VOLUMES = {1: 20_000.0, 2: 200_000.0, 3: 50_000.0, 4: 20_000.0}
COMMON = {(1, 2): 2_000.0, (2, 3): 5_000.0, (3, 4): 1_500.0}


class TestRoutePrivacy:
    def test_per_trace_values(self):
        result = route_privacy([1, 2, 3, 4], VOLUMES, COMMON, s=2, load_factor=3.0)
        assert len(result.trace_privacy) == 3
        assert all(0.0 <= p <= 1.0 for p in result.trace_privacy)

    def test_full_trajectory_stronger_than_any_trace(self):
        """Reconstructing the whole trajectory requires every hop, so
        trajectory privacy >= each trace privacy."""
        result = route_privacy([1, 2, 3, 4], VOLUMES, COMMON)
        for p in result.trace_privacy:
            assert result.full_trajectory_privacy >= p - 1e-12

    def test_longer_routes_harder_to_reconstruct(self):
        short = route_privacy([1, 2], VOLUMES, COMMON)
        long = route_privacy([1, 2, 3, 4], VOLUMES, COMMON)
        assert (
            long.full_trajectory_privacy >= short.full_trajectory_privacy
        )

    def test_weakest_trace(self):
        result = route_privacy([1, 2, 3], VOLUMES, COMMON)
        assert result.weakest_trace == min(result.trace_privacy)

    def test_exact_variant_close_to_paper(self):
        paper = route_privacy([1, 2, 3], VOLUMES, COMMON, exact=False)
        exact = route_privacy([1, 2, 3], VOLUMES, COMMON, exact=True)
        for a, b in zip(paper.trace_privacy, exact.trace_privacy):
            assert a == pytest.approx(b, abs=0.08)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            route_privacy([1], VOLUMES, COMMON)
        with pytest.raises(ConfigurationError):
            route_privacy([1, 1], VOLUMES, COMMON)
        with pytest.raises(NetworkDataError):
            route_privacy([1, 9], VOLUMES, COMMON)
        with pytest.raises(NetworkDataError):
            route_privacy([1, 3], VOLUMES, COMMON)  # pair (1,3) unknown

    def test_on_real_network_routes(self):
        """Trajectory privacy along actual Sioux Falls shortest paths."""
        from repro.roadnet.volumes import node_volumes, pair_common_volumes
        from repro.traffic.network_workload import sioux_falls_workload

        workload = sioux_falls_workload(total_trips=60_000, seed=3)
        volumes = node_volumes(workload.plan)
        common = pair_common_volumes(workload.plan)
        route = workload.plan.route(1, 20)
        result = route_privacy(route, volumes, common, s=2, load_factor=3.0)
        assert len(result.trace_privacy) == len(route) - 1
        # Adjacent corridor pairs share most of their traffic (n_c is a
        # large fraction of n_min), so single traces are exposed —
        # privacy protects against coincidences, and on a corridor most
        # coincidences are real.  Chaining restores protection.
        assert result.weakest_trace < 0.35
        assert result.full_trajectory_privacy > 0.4
        assert result.full_trajectory_privacy > max(result.trace_privacy)

    def test_render(self):
        text = route_privacy([1, 2, 3], VOLUMES, COMMON).render()
        assert "trajectory 1 -> 2 -> 3" in text
        assert "weakest trace" in text

"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(1 << 30)
        b = as_generator(42).integers(1 << 30)
        assert a == b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_children_are_independent_and_deterministic(self):
        first = [g.integers(1 << 30) for g in spawn_generators(3, 4)]
        second = [g.integers(1 << 30) for g in spawn_generators(3, 4)]
        assert first == second
        assert len(set(first)) == len(first)

    def test_spawn_from_generator(self):
        gens = spawn_generators(np.random.default_rng(0), 3)
        assert len(gens) == 3


class TestRngFactory:
    def test_same_request_same_stream(self):
        factory = RngFactory(7)
        a = factory.generator("pair", 3).integers(1 << 30)
        b = factory.generator("pair", 3).integers(1 << 30)
        assert a == b

    def test_different_names_differ(self):
        factory = RngFactory(7)
        a = factory.generator("pair", 0).integers(1 << 30)
        b = factory.generator("rep", 0).integers(1 << 30)
        assert a != b

    def test_different_indices_differ(self):
        factory = RngFactory(7)
        values = {factory.generator("x", i).integers(1 << 30) for i in range(8)}
        assert len(values) == 8

    def test_child_factories_differ_from_parent(self):
        factory = RngFactory(7)
        child = factory.child(0)
        assert child.seed != factory.seed
        assert factory.child(0).seed == child.seed  # deterministic

    def test_none_seed_defaults_to_zero(self):
        assert RngFactory(None).seed == 0

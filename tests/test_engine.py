"""Differential and registry tests for the pluggable bit-engine.

The ``packed`` backend must agree with the ``legacy`` bool backend on
every operation, for arbitrary (not just power-of-two) sizes, and the
vectorized :meth:`~repro.core.decoder.CentralDecoder.estimate_matrix`
must reproduce the per-pair path bit for bit on a realistic workload.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.engine as engine
from repro.core.bitarray import BitArray
from repro.core.config import SchemeConfig, configure
from repro.core.decoder import CentralDecoder
from repro.core.reports import RsuReport
from repro.errors import ConfigurationError, SaturatedArrayError

BACKENDS = ("legacy", "packed")

sizes = st.integers(min_value=1, max_value=520)


def pair_of_arrays(size, indices_a, indices_b):
    a = [BitArray.from_indices(size, [i % size for i in indices_a], backend=b)
         for b in BACKENDS]
    b = [BitArray.from_indices(size, [i % size for i in indices_b], backend=be)
         for be in BACKENDS]
    return a, b


class TestRegistry:
    def test_available_backends(self):
        # The builtin pair is always present; optional backends (e.g.
        # numba, registered only when importable) may extend the tuple.
        available = engine.available_backends()
        assert set(available) >= {"legacy", "packed"}
        assert available == tuple(sorted(available))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            engine.get_backend("vector512")
        with pytest.raises(ConfigurationError):
            BitArray(8, backend="nope")
        with pytest.raises(ConfigurationError):
            SchemeConfig(engine="nope")

    def test_instance_passthrough(self):
        backend = engine.get_backend("packed")
        assert engine.get_backend(backend) is backend

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(engine.ENV_VAR, "legacy")
        assert engine.default_backend_name() == "legacy"
        assert BitArray(8).backend == "legacy"
        monkeypatch.setenv(engine.ENV_VAR, "bogus")
        with pytest.raises(ConfigurationError):
            engine.default_backend_name()

    def test_programmatic_default_beats_env(self, monkeypatch):
        monkeypatch.setenv(engine.ENV_VAR, "legacy")
        engine.set_default_backend("packed")
        try:
            assert engine.default_backend_name() == "packed"
        finally:
            engine.set_default_backend(None)
        assert engine.default_backend_name() == "legacy"

    def test_use_backend_context(self):
        before = engine.default_backend_name()
        with engine.use_backend("legacy") as backend:
            assert backend.name == "legacy"
            assert BitArray(8).backend == "legacy"
        assert engine.default_backend_name() == before

    def test_config_canonicalizes_engine(self):
        assert configure(engine="legacy").engine == "legacy"
        assert SchemeConfig().engine is None

    def test_storage_density(self):
        packed = BitArray(1 << 16, backend="packed")
        legacy = BitArray(1 << 16, backend="legacy")
        assert legacy.storage_nbytes == 8 * packed.storage_nbytes


class TestDifferential:
    """packed vs legacy on every primitive, arbitrary sizes."""

    @given(sizes, st.data())
    def test_set_bits_count_and_bytes(self, size, data):
        indices = data.draw(
            st.lists(st.integers(0, size - 1), max_size=2 * size)
        )
        arrays = [
            BitArray.from_indices(size, indices, backend=b) if indices
            else BitArray(size, backend=b)
            for b in BACKENDS
        ]
        legacy, packed = arrays
        assert legacy.count_ones() == packed.count_ones() == len(set(indices))
        assert legacy.count_zeros() == packed.count_zeros()
        assert legacy.to_bytes() == packed.to_bytes()
        assert np.array_equal(legacy.bits, packed.bits)
        assert legacy == packed and packed == legacy

    @given(sizes, st.data())
    def test_or_and(self, size, data):
        ia = data.draw(st.lists(st.integers(0, size - 1), max_size=size))
        ib = data.draw(st.lists(st.integers(0, size - 1), max_size=size))
        (al, ap), (bl, bp) = pair_of_arrays(size, ia, ib)
        assert (al | bl).to_bytes() == (ap | bp).to_bytes()
        assert (al & bl).to_bytes() == (ap & bp).to_bytes()
        # Mixed-backend operands coerce to the left operand's backend.
        mixed = al | bp
        assert mixed.backend == "legacy"
        assert mixed.to_bytes() == (ap | bp).to_bytes()

    @given(sizes, st.integers(min_value=1, max_value=9), st.data())
    def test_unfold_tile(self, size, repeats, data):
        indices = data.draw(st.lists(st.integers(0, size - 1), max_size=size))
        expected = np.zeros(size, dtype=bool)
        if indices:
            expected[indices] = True
        expected = np.tile(expected, repeats)
        for backend in BACKENDS:
            array = (
                BitArray.from_indices(size, indices, backend=backend)
                if indices
                else BitArray(size, backend=backend)
            )
            tiled = array.tile(repeats)
            assert tiled.size == size * repeats
            assert np.array_equal(tiled.bits, expected), backend
            # Zero fraction is preserved — the unfolding invariant.
            assert tiled.count_zeros() * size == array.count_zeros() * tiled.size

    @given(sizes, st.data())
    def test_bytes_round_trip_cross_backend(self, size, data):
        indices = data.draw(st.lists(st.integers(0, size - 1), max_size=size))
        source = (
            BitArray.from_indices(size, indices, backend="packed")
            if indices
            else BitArray(size, backend="packed")
        )
        wire = source.to_bytes()
        for backend in BACKENDS:
            restored = BitArray.from_bytes(wire, size, backend=backend)
            assert restored == source
            assert restored.to_bytes() == wire

    @given(sizes, st.data())
    def test_single_bit_ops(self, size, data):
        index = data.draw(st.integers(0, size - 1))
        legacy = BitArray(size, backend="legacy")
        packed = BitArray(size, backend="packed")
        for array in (legacy, packed):
            array.set_bit(index)
        assert legacy[index] == packed[index] == 1
        assert legacy.to_bytes() == packed.to_bytes()
        for array in (legacy, packed):
            array.clear()
        assert legacy.count_ones() == packed.count_ones() == 0

    def test_with_backend_conversion(self):
        source = BitArray.from_indices(77, [0, 13, 76], backend="legacy")
        converted = source.with_backend("packed")
        assert converted.backend == "packed"
        assert converted == source
        assert source.with_backend("legacy") is source

    def test_dense_scatter_path(self):
        # Above the sparse threshold (indices.size > size >> 8) the
        # packed backend takes the bool-scatter route; both routes must
        # agree with legacy.
        size = 1 << 12
        rng = np.random.default_rng(5)
        dense = rng.integers(0, size, size=size // 2)
        sparse = rng.integers(0, size, size=3)
        for indices in (dense, sparse):
            legacy = BitArray.from_indices(size, indices, backend="legacy")
            packed = BitArray.from_indices(size, indices, backend="packed")
            assert legacy.to_bytes() == packed.to_bytes()


def _loaded_decoder(backend, *, policy="raise", k=8, seed=3):
    rng = np.random.default_rng(seed)
    decoder = CentralDecoder(
        config=SchemeConfig(s=2, policy=policy, engine=backend)
    )
    for rsu_id in range(1, k + 1):
        size = 1 << (6 + rsu_id % 4)
        bits = rng.random(size) < 0.35
        decoder.submit(
            RsuReport(
                rsu_id,
                int(bits.sum()),
                BitArray.from_bits(bits, backend=backend),
            )
        )
    return decoder


class TestEstimateMatrix:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_all_pairs_bit_identical(self, backend):
        decoder = _loaded_decoder(backend)
        scalar = decoder.all_pairs()
        batched = decoder.estimate_matrix()
        assert set(scalar) == set(batched)
        for key in scalar:
            # PairEstimate is a frozen dataclass: == compares every
            # field (value, v_c, v_x, v_y, m_x, m_y, n_x, n_y, s)
            # exactly — no approx.
            assert scalar[key] == batched[key], key

    def test_backends_agree(self):
        legacy = _loaded_decoder("legacy").estimate_matrix()
        packed = _loaded_decoder("packed").estimate_matrix()
        assert legacy == packed

    def test_empty_and_single(self):
        decoder = CentralDecoder(2)
        assert decoder.estimate_matrix() == {}
        decoder.submit(RsuReport(1, 2, BitArray.from_indices(8, [1, 2])))
        assert decoder.estimate_matrix() == {}

    def test_rsu_subset(self):
        decoder = _loaded_decoder("packed")
        subset = decoder.estimate_matrix(rsu_ids=[1, 3, 5])
        assert set(subset) == {(1, 3), (1, 5), (3, 5)}
        assert subset[(1, 3)] == decoder.pair_estimate(1, 3)

    def test_saturated_raises(self):
        decoder = CentralDecoder(2, policy="raise")
        for rsu_id in (1, 2):
            decoder.submit(
                RsuReport(
                    rsu_id, 8, BitArray.from_indices(8, range(8))
                )
            )
        with pytest.raises(SaturatedArrayError):
            decoder.estimate_matrix()

    def test_saturated_clamp_matches_scalar(self):
        decoder = CentralDecoder(2, policy="clamp")
        ref = CentralDecoder(2, policy="clamp")
        for d in (decoder, ref):
            d.submit(RsuReport(1, 8, BitArray.from_indices(8, range(8))))
            d.submit(
                RsuReport(2, 20, BitArray.from_indices(32, range(0, 32, 2)))
            )
        assert decoder.estimate_matrix() == {
            (1, 2): ref.pair_estimate(1, 2)
        }

    @settings(deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_matrix_identity_random_loads(self, seed):
        decoder = _loaded_decoder("packed", policy="clamp", k=5, seed=seed)
        assert decoder.estimate_matrix() == decoder.all_pairs()


class TestSiouxFallsPeriod:
    """estimate_matrix equals per-pair estimate() on a real workload."""

    @pytest.fixture(scope="class")
    def schemes(self):
        import repro
        from repro.traffic.network_workload import sioux_falls_workload

        workload = sioux_falls_workload(total_trips=12_000, seed=11)
        built = {}
        for backend in BACKENDS:
            scheme = repro.VlmScheme(
                workload.volumes(),
                s=2,
                load_factor=3.0,
                hash_seed=7,
                policy="clamp",
                engine=backend,
            )
            scheme.run_period(workload.passes())
            built[backend] = scheme
        return built

    def test_wire_bytes_identical_across_backends(self, schemes):
        legacy, packed = (schemes[b].decoder for b in BACKENDS)
        for rsu_id in legacy.rsu_ids():
            assert (
                legacy.report_for(rsu_id).bits.to_bytes()
                == packed.report_for(rsu_id).bits.to_bytes()
            )

    def test_matrix_equals_per_pair(self, schemes):
        for backend in BACKENDS:
            decoder = schemes[backend].decoder
            matrix = decoder.estimate_matrix()
            ids = decoder.rsu_ids()
            assert len(matrix) == len(ids) * (len(ids) - 1) // 2
            for (a, b), batched in matrix.items():
                assert batched == decoder.pair_estimate(a, b), (backend, a, b)

    def test_estimates_bit_identical_across_backends(self, schemes):
        legacy = schemes["legacy"].decoder.estimate_matrix()
        packed = schemes["packed"].decoder.estimate_matrix()
        assert legacy == packed


class TestWireGolden:
    """Golden snapshot: the serialized report bytes are pinned, so a
    backend change can never silently alter the wire format."""

    def test_encode_golden_bytes(self):
        from repro.core.encoder import encode_passes
        from repro.core.parameters import SchemeParameters

        params = SchemeParameters(s=2, load_factor=3.0, m_o=64, hash_seed=9)
        ids = np.arange(40, dtype=np.uint64)
        keys = ids * np.uint64(2654435761) + np.uint64(7)
        expected = None
        for backend in BACKENDS:
            report = encode_passes(ids, keys, 3, 64, params, backend=backend)
            wire = report.bits.to_bytes()
            if expected is None:
                expected = wire
            assert wire == expected
        # Pinned bytes: computed once from the seed-stable hash chain.
        assert expected.hex() == "9d23075cbe010c37"

    def test_bitarray_golden_bytes(self):
        array_bits = np.zeros(21, dtype=bool)
        array_bits[[0, 5, 8, 13, 20]] = True
        for backend in BACKENDS:
            array = BitArray.from_bits(array_bits, backend=backend)
            assert array.to_bytes().hex() == "848408"

"""Unit and property tests for the unfolding technique (Eq. 3)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.bitarray import BitArray
from repro.core.unfolding import unfold, unfolded_or
from repro.errors import ConfigurationError

powers = st.integers(min_value=0, max_value=7).map(lambda k: 1 << k)


class TestUnfold:
    def test_duplicates_content(self):
        array = BitArray.from_indices(4, [1])
        unfolded = unfold(array, 12)
        assert [unfolded[i] for i in range(12)] == [0, 1, 0, 0] * 3

    def test_definition_eq3(self):
        """B_x^u[i] == B_x[i mod m_x] for all i (paper Eq. 3)."""
        rng = np.random.default_rng(5)
        array = BitArray.from_bits(rng.random(8) < 0.4)
        unfolded = unfold(array, 32)
        for i in range(32):
            assert unfolded[i] == array[i % 8]

    def test_same_size_copy(self):
        array = BitArray.from_indices(4, [0])
        out = unfold(array, 4)
        assert out == array
        out.set_bit(2)
        assert array[2] == 0  # independent copy

    def test_rejects_shrink(self):
        with pytest.raises(ConfigurationError):
            unfold(BitArray(8), 4)

    def test_rejects_non_multiple(self):
        with pytest.raises(ConfigurationError):
            unfold(BitArray(8), 20)

    @given(powers, powers, st.data())
    def test_zero_fraction_preserved(self, m_small, factor, data):
        """The estimator's key invariant: unfolding preserves the
        fraction of zero bits exactly."""
        size = m_small
        indices = data.draw(
            st.lists(st.integers(min_value=0, max_value=size - 1), max_size=size)
        )
        array = BitArray.from_indices(size, indices) if indices else BitArray(size)
        unfolded = unfold(array, size * factor)
        assert unfolded.zero_fraction() == pytest.approx(array.zero_fraction())


class TestUnfoldedOr:
    def test_basic(self):
        small = BitArray.from_indices(2, [0])
        large = BitArray.from_indices(4, [3])
        joint = unfolded_or(small, large)
        assert [joint[i] for i in range(4)] == [1, 0, 1, 1]

    def test_order_independent(self):
        small = BitArray.from_indices(2, [1])
        large = BitArray.from_indices(8, [0, 5])
        assert unfolded_or(small, large) == unfolded_or(large, small)

    def test_equal_sizes_is_plain_or(self):
        a = BitArray.from_indices(4, [0])
        b = BitArray.from_indices(4, [2])
        assert unfolded_or(a, b) == (a | b)

    @given(powers, powers)
    def test_joint_zeros_never_exceed_either(self, m_small, factor):
        rng = np.random.default_rng(m_small * 31 + factor)
        small = BitArray.from_bits(rng.random(m_small) < 0.3)
        large = BitArray.from_bits(rng.random(m_small * factor) < 0.3)
        joint = unfolded_or(small, large)
        assert joint.zero_fraction() <= small.zero_fraction() + 1e-12
        assert joint.zero_fraction() <= large.zero_fraction() + 1e-12

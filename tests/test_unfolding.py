"""Unit and property tests for the unfolding technique (Eq. 3)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.bitarray import BitArray
from repro.core.decoder import CentralDecoder
from repro.core.estimator import ZeroFractionPolicy, estimate_intersection
from repro.core.reports import RsuReport
from repro.core.unfolding import unfold, unfolded_or
from repro.errors import ConfigurationError

powers = st.integers(min_value=0, max_value=7).map(lambda k: 1 << k)
small_powers = st.integers(min_value=1, max_value=5).map(lambda k: 1 << k)


class TestUnfold:
    def test_duplicates_content(self):
        array = BitArray.from_indices(4, [1])
        unfolded = unfold(array, 12)
        assert [unfolded[i] for i in range(12)] == [0, 1, 0, 0] * 3

    def test_definition_eq3(self):
        """B_x^u[i] == B_x[i mod m_x] for all i (paper Eq. 3)."""
        rng = np.random.default_rng(5)
        array = BitArray.from_bits(rng.random(8) < 0.4)
        unfolded = unfold(array, 32)
        for i in range(32):
            assert unfolded[i] == array[i % 8]

    def test_same_size_copy(self):
        array = BitArray.from_indices(4, [0])
        out = unfold(array, 4)
        assert out == array
        out.set_bit(2)
        assert array[2] == 0  # independent copy

    def test_rejects_shrink(self):
        with pytest.raises(ConfigurationError):
            unfold(BitArray(8), 4)

    def test_rejects_non_multiple(self):
        with pytest.raises(ConfigurationError):
            unfold(BitArray(8), 20)

    @given(powers, powers, st.data())
    def test_zero_fraction_preserved(self, m_small, factor, data):
        """The estimator's key invariant: unfolding preserves the
        fraction of zero bits exactly."""
        size = m_small
        indices = data.draw(
            st.lists(st.integers(min_value=0, max_value=size - 1), max_size=size)
        )
        array = BitArray.from_indices(size, indices) if indices else BitArray(size)
        unfolded = unfold(array, size * factor)
        assert unfolded.zero_fraction() == pytest.approx(array.zero_fraction())


class TestUnfoldedOr:
    def test_basic(self):
        small = BitArray.from_indices(2, [0])
        large = BitArray.from_indices(4, [3])
        joint = unfolded_or(small, large)
        assert [joint[i] for i in range(4)] == [1, 0, 1, 1]

    def test_order_independent(self):
        small = BitArray.from_indices(2, [1])
        large = BitArray.from_indices(8, [0, 5])
        assert unfolded_or(small, large) == unfolded_or(large, small)

    def test_equal_sizes_is_plain_or(self):
        a = BitArray.from_indices(4, [0])
        b = BitArray.from_indices(4, [2])
        assert unfolded_or(a, b) == (a | b)

    @given(powers, powers)
    def test_joint_zeros_never_exceed_either(self, m_small, factor):
        rng = np.random.default_rng(m_small * 31 + factor)
        small = BitArray.from_bits(rng.random(m_small) < 0.3)
        large = BitArray.from_bits(rng.random(m_small * factor) < 0.3)
        joint = unfolded_or(small, large)
        assert joint.zero_fraction() <= small.zero_fraction() + 1e-12
        assert joint.zero_fraction() <= large.zero_fraction() + 1e-12


def _random_arrays(m_x, factor, seed, density=0.4):
    """Two random arrays with bit 0 clear so nothing saturates and the
    CLAMP correction never kicks in — properties stay exact."""
    rng = np.random.default_rng(seed)
    bits_x = rng.random(m_x) < density
    bits_y = rng.random(m_x * factor) < density
    bits_x[0] = False
    bits_y[0] = False
    return BitArray.from_bits(bits_x), BitArray.from_bits(bits_y)


class TestUnfoldThenOrDecodePath:
    """The decode-path identity the whole estimator rests on: the
    unfolded OR is an OR per index modulo ``m_x`` (Eq. 3), and the
    zero fractions the MLE consumes are exactly the arrays'."""

    @given(
        small_powers,
        small_powers,
        st.integers(min_value=0, max_value=2**31),
    )
    def test_unfold_then_or_is_or_per_index_modulo_m(
        self, m_x, factor, seed
    ):
        array_x, array_y = _random_arrays(m_x, factor, seed)
        joint = unfolded_or(array_x, array_y)
        m_y = array_y.size
        assert joint.size == m_y
        for i in range(m_y):
            assert joint[i] == (array_x[i % m_x] | array_y[i % m_y])

    @given(
        small_powers,
        small_powers,
        st.integers(min_value=0, max_value=2**31),
    )
    def test_decoder_fractions_are_the_arrays_zero_fractions(
        self, m_x, factor, seed
    ):
        """V_x, V_y, V_c reported by the decoder are exactly the zero
        fractions of B_x, B_y, and unfold-then-OR — no resampling, no
        approximation."""
        array_x, array_y = _random_arrays(m_x, factor, seed)
        decoder = CentralDecoder(2, policy=ZeroFractionPolicy.CLAMP)
        decoder.submit(RsuReport(rsu_id=1, counter=3, bits=array_x))
        decoder.submit(RsuReport(rsu_id=2, counter=4, bits=array_y))
        estimate = decoder.pair_estimate(1, 2)
        assert estimate.v_x == array_x.zero_fraction()
        assert estimate.v_y == array_y.zero_fraction()
        assert (
            estimate.v_c == unfolded_or(array_x, array_y).zero_fraction()
        )
        assert estimate.m_x == array_x.size
        assert estimate.m_y == array_y.size

    @given(
        small_powers,
        small_powers,
        st.integers(min_value=0, max_value=2**31),
    )
    def test_memoized_decoder_matches_direct_estimator(
        self, m_x, factor, seed
    ):
        """The decoder's unfold-cache fast path must agree with the
        one-shot estimate_intersection on every field."""
        array_x, array_y = _random_arrays(m_x, factor, seed)
        report_x = RsuReport(rsu_id=1, counter=3, bits=array_x)
        report_y = RsuReport(rsu_id=2, counter=4, bits=array_y)
        decoder = CentralDecoder(2, policy=ZeroFractionPolicy.CLAMP)
        decoder.submit_many([report_x, report_y])
        # Query twice: the second answer comes from the unfold cache.
        first = decoder.pair_estimate(1, 2)
        second = decoder.pair_estimate(1, 2)
        direct = estimate_intersection(
            report_x, report_y, 2, policy=ZeroFractionPolicy.CLAMP
        )
        assert first == second == direct

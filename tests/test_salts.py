"""Unit tests for repro.hashing.salts."""

import pytest

from repro.errors import ConfigurationError
from repro.hashing.salts import SaltArray


class TestSaltArray:
    def test_deterministic_from_seed(self):
        a = SaltArray(5, seed=3)
        b = SaltArray(5, seed=3)
        assert list(a) == list(b)

    def test_seed_changes_constants(self):
        assert list(SaltArray(5, seed=1)) != list(SaltArray(5, seed=2))

    def test_size_and_len(self):
        salts = SaltArray(10)
        assert salts.size == len(salts) == 10

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            SaltArray(0)

    def test_values_read_only(self):
        salts = SaltArray(4)
        with pytest.raises(ValueError):
            salts.values[0] = 0

    def test_getitem_wraps_modulo(self):
        salts = SaltArray(4, seed=7)
        assert salts[5] == salts[1]

    def test_gather_matches_getitem(self):
        salts = SaltArray(8, seed=11)
        positions = [0, 3, 7, 3]
        gathered = salts.gather(positions)
        assert [int(v) for v in gathered] == [salts[p] for p in positions]

    def test_constants_distinct(self):
        salts = SaltArray(64, seed=5)
        assert len(set(salts)) == 64

    def test_gather_wraps(self):
        salts = SaltArray(4, seed=2)
        assert int(salts.gather([6])[0]) == salts[2]

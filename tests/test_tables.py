"""Unit tests for repro.utils.tables."""

import pytest

from repro.utils.tables import AsciiTable, format_number


class TestFormatNumber:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, "-"),
            ("abc", "abc"),
            (5, "5"),
            (1234567, "1,234,567"),
            (3.0, "3"),
            (0.12345, "0.123"),
            (float("nan"), "nan"),
        ],
    )
    def test_values(self, value, expected):
        assert format_number(value) == expected

    def test_precision(self):
        assert format_number(0.123456, precision=5) == "0.12346"


class TestAsciiTable:
    def test_render_aligns_columns(self):
        table = AsciiTable(["a", "long-header"], title="T")
        table.add_row([1, 2])
        table.add_row([100000, 3])
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-header" in lines[1]
        body = lines[3:]
        assert len(body) == 2
        assert len(set(len(line) for line in lines[1:])) == 1  # equal widths

    def test_row_width_mismatch(self):
        table = AsciiTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_len_and_rows_copy(self):
        table = AsciiTable(["a"])
        table.add_row([1])
        assert len(table) == 1
        rows = table.rows
        rows[0][0] = "mutated"
        assert table.rows[0][0] == "1"

    def test_markdown(self):
        table = AsciiTable(["x", "y"], title="M")
        table.add_row([1, 2.5])
        md = table.to_markdown()
        assert "| x | y |" in md
        assert "| 1 | 2.500 |" in md
        assert md.startswith("**M**")

"""Tests for the pluggable scenario zoo (repro.scenarios)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    DemandProfile,
    GridScenario,
    RingRadialScenario,
    Scenario,
    SiouxFallsScenario,
    TrajectoryReplayScenario,
    get_scenario,
    mini_tntp_paths,
    register,
    render_scenario_detail,
    render_scenario_list,
    scenario_names,
)
from repro.traffic.network_workload import sioux_falls_workload


def _same_workload(w1, w2) -> bool:
    """Bit-level equality of two materialized workloads."""
    if w1.volumes() != w2.volumes():
        return False
    if w1.common_volumes() != w2.common_volumes():
        return False
    p1, p2 = w1.passes(), w2.passes()
    if set(p1) != set(p2):
        return False
    return all(
        np.array_equal(p1[n][0], p2[n][0])
        and np.array_equal(p1[n][1], p2[n][1])
        for n in p1
    )


class TestDemandProfile:
    def test_flat_is_exact_identity(self):
        profile = DemandProfile()
        assert profile.scale(12_345, 0) == 12_345
        assert profile.scale(12_345, 99) == 12_345

    def test_factors_cycle(self):
        profile = DemandProfile(name="wk", factors=(1.0, 0.5))
        assert profile.factor(0) == 1.0
        assert profile.factor(1) == 0.5
        assert profile.factor(2) == 1.0
        assert profile.scale(1_000, 1) == 500

    def test_scale_floors_at_one_trip(self):
        profile = DemandProfile(name="tiny", factors=(0.001,))
        assert profile.scale(10, 0) == 1

    def test_invalid_factors_rejected(self):
        with pytest.raises(ConfigurationError):
            DemandProfile(factors=())
        with pytest.raises(ConfigurationError):
            DemandProfile(factors=(1.0, -0.5))


class TestRegistry:
    def test_known_names_resolve(self):
        for name in scenario_names():
            scenario = get_scenario(name)
            assert isinstance(scenario, Scenario)
            assert scenario.network().num_nodes >= 2

    def test_parametric_grid(self):
        scenario = get_scenario("grid-3x7")
        assert isinstance(scenario, GridScenario)
        assert scenario.network().num_nodes == 21
        assert scenario.name == "grid-3x7"

    def test_parametric_ring_default_spokes(self):
        scenario = get_scenario("ring-2")
        assert isinstance(scenario, RingRadialScenario)
        assert scenario.spokes == 8
        assert scenario.network().num_nodes == 17

    def test_parametric_ring_explicit_spokes(self):
        scenario = get_scenario("ring-2x6")
        assert scenario.network().num_nodes == 13

    def test_tntp_path_spec(self):
        net, trips = mini_tntp_paths()
        scenario = get_scenario(f"tntp:{net}:{trips}")
        assert scenario.network().num_nodes == 8
        bare = get_scenario(str(net))
        assert bare.network().num_arcs == 20

    def test_unknown_spec_rejected_with_catalog(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_scenario("atlantis")
        assert "sioux-falls" in str(excinfo.value)

    def test_register_custom(self):
        register("test-custom-grid", lambda: GridScenario(rows=2, cols=3))
        try:
            assert get_scenario("test-custom-grid").network().num_nodes == 6
        finally:
            from repro.scenarios import registry

            registry._REGISTRY.pop("test-custom-grid", None)

    def test_fresh_instance_per_resolution(self):
        assert get_scenario("sioux-falls") is not get_scenario("sioux-falls")

    def test_render_list_and_detail(self):
        listing = render_scenario_list()
        for name in scenario_names():
            assert name in listing
        detail = render_scenario_detail("trajectory-replay")
        assert "weekday-weekend" in detail
        assert "truck" in detail


class TestSiouxFallsBitIdentity:
    def test_matches_legacy_workload_exactly(self):
        legacy = sioux_falls_workload(total_trips=8_000, seed=21)
        scenario = get_scenario("sioux-falls").workload(
            total_trips=8_000, seed=21
        )
        assert _same_workload(legacy, scenario)

    def test_alias_still_honors_gamma(self):
        steep = sioux_falls_workload(total_trips=8_000, gamma=2.0, seed=21)
        direct = SiouxFallsScenario(gamma=2.0).workload(
            total_trips=8_000, seed=21
        )
        assert _same_workload(steep, direct)


class TestScenarioDeterminism:
    @pytest.mark.parametrize(
        "spec", ["grid-4x4", "ring-2x6", "tntp-mini", "trajectory-replay"]
    )
    def test_same_args_same_workload(self, spec):
        a = get_scenario(spec).workload(total_trips=2_000, seed=5, period=1)
        b = get_scenario(spec).workload(total_trips=2_000, seed=5, period=1)
        assert _same_workload(a, b)

    def test_seed_changes_fleet_not_truth(self):
        s1 = get_scenario("grid-4x4").workload(total_trips=2_000, seed=1)
        s2 = get_scenario("grid-4x4").workload(total_trips=2_000, seed=2)
        assert s1.volumes() == s2.volumes()
        ids1 = np.concatenate([s1.passes()[n][0] for n in sorted(s1.passes())])
        ids2 = np.concatenate([s2.passes()[n][0] for n in sorted(s2.passes())])
        assert not np.array_equal(ids1, ids2)


class TestTntpScenario:
    def test_demand_rescaled_to_requested_total(self):
        scenario = get_scenario("tntp-mini")
        workload = scenario.workload(total_trips=2_480, seed=3)
        total = workload.plan.trips.total_trips
        # Rescaling rounds per pair; stay within a vehicle per pair.
        assert abs(total - 2_480) <= len(workload.plan.trips)

    def test_network_only_spec_uses_gravity(self):
        net, _ = mini_tntp_paths()
        scenario = get_scenario(str(net))
        workload = scenario.workload(total_trips=1_000, seed=3)
        assert workload.plan.trips.total_trips > 0


class TestTrajectoryReplay:
    @pytest.fixture(scope="class")
    def scenario(self):
        return TrajectoryReplayScenario()

    def test_class_partition_matches_mix(self, scenario):
        trips = scenario.trip_table(30_000)
        mix = scenario.class_mix(trips)
        total = sum(mix.values())
        assert mix["car"] / total == pytest.approx(0.7, abs=0.15)
        assert mix["truck"] / total == pytest.approx(0.2, abs=0.1)
        assert mix["bus"] / total == pytest.approx(0.1, abs=0.08)

    def test_trucks_avoid_the_cbd(self, scenario):
        from repro.scenarios.trajectory import CBD_NODE

        trips = scenario.trip_table(30_000)
        checked = 0
        for (o, d), _ in trips.pairs():
            if scenario.class_of(o, d) != "truck":
                continue
            if CBD_NODE in (o, d):
                continue
            assert CBD_NODE not in scenario.route_for(o, d)
            checked += 1
        assert checked > 0

    def test_buses_call_at_the_transit_hub(self, scenario):
        from repro.scenarios.trajectory import TRANSIT_HUB

        trips = scenario.trip_table(30_000)
        checked = 0
        for (o, d), _ in trips.pairs():
            if scenario.class_of(o, d) != "bus":
                continue
            route = scenario.route_for(o, d)
            assert TRANSIT_HUB in route
            # Replayed trajectories never revisit an RSU.
            assert len(route) == len(set(route))
            checked += 1
        assert checked > 0

    def test_weekend_demand_scales_down(self, scenario):
        weekday = scenario.workload(total_trips=10_000, seed=3, period=0)
        weekend = scenario.workload(total_trips=10_000, seed=3, period=6)
        assert (
            weekend.plan.trips.total_trips
            < 0.6 * weekday.plan.trips.total_trips
        )

    def test_outage_schedule_is_metadata_only(self, scenario):
        assert scenario.rsu_outages(0) == frozenset()
        assert scenario.rsu_outages(6)
        assert len(scenario.active_rsus(6)) == 24 - len(
            scenario.rsu_outages(6)
        )
        # The measurement plane still covers every RSU.
        workload = scenario.workload(total_trips=2_000, seed=1, period=6)
        assert set(workload.passes()) == set(scenario.network().nodes)

    def test_routes_differ_from_pure_shortest_paths(self, scenario):
        base = get_scenario("sioux-falls").workload(total_trips=10_000, seed=3)
        replay = scenario.workload(total_trips=10_000, seed=3)
        assert base.volumes() != replay.volumes()


class TestDeploymentSpecScenario:
    def test_default_spec_unchanged(self):
        from repro.service.runtime import DeploymentSpec

        spec = DeploymentSpec(total_trips=2_000, seed=3)
        legacy = sioux_falls_workload(total_trips=2_000, seed=3)
        assert spec.scenario == "sioux-falls"
        assert _same_workload(spec.workload, legacy)

    def test_grid_spec_threads_through(self):
        from repro.service.runtime import DeploymentSpec

        spec = DeploymentSpec(total_trips=2_000, seed=3, scenario="grid-4x4")
        assert spec.scenario_obj.name == "grid-4x4"
        assert set(spec.scheme.rsu_ids) == set(range(1, 17))

    def test_profile_applies_per_period(self):
        from repro.service.runtime import DeploymentSpec

        spec = DeploymentSpec(
            total_trips=4_000,
            seed=3,
            periods=7,
            scenario="trajectory-replay",
        )
        weekday = spec.workload_for(0).plan.trips.total_trips
        weekend = spec.workload_for(6).plan.trips.total_trips
        assert weekend < 0.6 * weekday

    def test_unknown_scenario_rejected(self):
        from repro.service.runtime import DeploymentSpec

        with pytest.raises(ConfigurationError):
            DeploymentSpec(total_trips=2_000, scenario="nope")


class TestDeploymentFromScenario:
    def test_from_scenario_and_profile_replay(self):
        from repro.vcps.deployment import Deployment

        deployment = Deployment.from_scenario(
            "trajectory-replay",
            total_trips=4_000,
            workload_seed=7,
            seed=11,
            load_factor=8.0,
        )
        records = deployment.run_profile(7)
        assert len(records) == 7
        assert records[6].demand_factor == pytest.approx(0.5)

    def test_run_profile_requires_scenario(self):
        from repro.traffic.network_workload import NetworkWorkload
        from repro.vcps.deployment import Deployment

        scenario = get_scenario("grid-3x3")
        workload = scenario.workload(total_trips=1_000, seed=1)
        deployment = Deployment(workload, seed=5)
        with pytest.raises(ConfigurationError):
            deployment.run_profile(2)
        assert isinstance(deployment.workload, NetworkWorkload)


class TestExperimentsScenario:
    def test_od_matrix_on_grid(self):
        from repro.experiments.sioux_falls_matrix import run_od_matrix

        result = run_od_matrix(
            scenario="grid-4x4", total_trips=30_000, min_truth=100
        )
        assert result.scenario == "grid-4x4"
        assert result.outcomes
        assert "grid-4x4" in result.render()

    def test_scaling_scenario_sweep(self):
        from repro.experiments.scaling import run_scaling

        result = run_scaling(
            scenarios=("grid-3x3", "grid-4x4"),
            trips_per_rsu=800,
            min_truth=50,
            seed=41,
        )
        assert [p.rsus for p in result.points] == [9, 16]
        assert [p.scenario for p in result.points] == [
            "grid-3x3",
            "grid-4x4",
        ]

    def test_scaling_legacy_city_sizes_unchanged(self):
        from repro.experiments.scaling import run_scaling

        result = run_scaling(
            city_sizes=((2, 6),), trips_per_rsu=800, min_truth=50, seed=41
        )
        assert result.points[0].rsus == 13


class TestScenarioCli:
    def test_scenarios_list(self, capsys):
        from repro.cli import main

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "sioux-falls" in out
        assert "trajectory-replay" in out

    def test_scenarios_describe(self, capsys):
        from repro.cli import main

        assert main(["scenarios", "describe", "grid-5x5"]) == 0
        out = capsys.readouterr().out
        assert "25" in out

    def test_scenarios_describe_unknown(self, capsys):
        from repro.cli import main

        assert main(["scenarios", "describe", "atlantis"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_scenarios_describe_missing_spec(self, capsys):
        from repro.cli import main

        assert main(["scenarios", "describe"]) == 2

    def test_matrix_accepts_scenario_flag(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "matrix",
                    "--quick",
                    "--scenario",
                    "grid-3x3",
                ]
            )
            == 0
        )
        assert "grid-3x3" in capsys.readouterr().out


@pytest.mark.slow
class TestLargeGridParallelIdentity:
    def test_matrix_200_rsus_bit_identical_across_workers(self):
        """A 15x15 grid (225 RSUs) through `repro matrix`'s runner:
        workers 1 and 4 must produce identical matrices."""
        from repro.experiments.sioux_falls_matrix import run_od_matrix

        kwargs = dict(
            scenario="grid-15x15",
            total_trips=120_000,
            min_truth=50,
            seed=13,
        )
        serial = run_od_matrix(workers=1, **kwargs)
        parallel = run_od_matrix(workers=4, executor="process", **kwargs)
        assert serial.scenario == "grid-15x15"
        assert len(serial.outcomes) == len(parallel.outcomes)
        for a, b in zip(serial.outcomes, parallel.outcomes):
            assert a == b

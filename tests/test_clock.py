"""Tests for the simulation clock."""

import pytest

from repro.errors import ConfigurationError
from repro.vcps.clock import SimulationClock


class TestSimulationClock:
    def test_initial_state(self):
        clock = SimulationClock(ticks_per_period=10)
        assert clock.now == 0
        assert clock.period == 0
        assert clock.at_period_boundary()

    def test_advance(self):
        clock = SimulationClock(ticks_per_period=10)
        assert clock.advance(3) == 3
        assert clock.tick_in_period == 3
        assert not clock.at_period_boundary()

    def test_period_rollover(self):
        clock = SimulationClock(ticks_per_period=10)
        clock.advance(25)
        assert clock.period == 2
        assert clock.tick_in_period == 5

    def test_boundary_detection(self):
        clock = SimulationClock(ticks_per_period=10)
        clock.advance(10)
        assert clock.at_period_boundary()
        assert clock.period == 1

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            SimulationClock(0)
        clock = SimulationClock(10)
        with pytest.raises(ConfigurationError):
            clock.advance(-1)

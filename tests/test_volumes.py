"""Tests for node volumes, pair volumes, and traffic materialization."""

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.roadnet.graph import Arc, RoadNetwork
from repro.roadnet.routing import assign_routes
from repro.roadnet.trips import TripTable
from repro.roadnet.volumes import (
    TrafficAssignment,
    calibrate_to_node_volumes,
    node_volumes,
    pair_common_volumes,
)


@pytest.fixture
def plan():
    """Line 1-2-3-4 with three OD flows."""
    arcs = []
    for a, b in [(1, 2), (2, 3), (3, 4)]:
        arcs.append(Arc(a, b))
        arcs.append(Arc(b, a))
    network = RoadNetwork("line", arcs)
    trips = TripTable({(1, 4): 10, (2, 4): 20, (1, 2): 5})
    return assign_routes(network, trips)


class TestGroundTruth:
    def test_node_volumes(self, plan):
        volumes = node_volumes(plan)
        assert volumes == {1: 15, 2: 35, 3: 30, 4: 30}

    def test_pair_common_volumes(self, plan):
        common = pair_common_volumes(plan)
        assert common[(1, 4)] == 10
        assert common[(2, 4)] == 30   # both OD flows pass 2 and 4
        assert common[(1, 2)] == 15
        assert common[(3, 4)] == 30
        assert common[(1, 3)] == 10

    def test_keys_are_ordered(self, plan):
        assert all(a < b for a, b in pair_common_volumes(plan))


class TestTrafficAssignment:
    def test_materialize_counts(self, plan):
        assignment = TrafficAssignment.materialize(plan, seed=1)
        assert assignment.total_vehicles == 35

    def test_passes_at_matches_ground_truth(self, plan):
        assignment = TrafficAssignment.materialize(plan, seed=1)
        volumes = node_volumes(plan)
        for node, volume in volumes.items():
            ids, keys = assignment.passes_at(node)
            assert ids.size == volume
            assert keys.size == volume

    def test_passes_at_empty_node(self, plan):
        assignment = TrafficAssignment.materialize(plan, seed=1)
        # make a node with no traffic by dropping all flows through it:
        ids, keys = assignment.passes_at(99)
        assert ids.size == 0

    def test_common_vehicles_consistent(self, plan):
        """Vehicles listed at both nodes == pairwise ground truth."""
        assignment = TrafficAssignment.materialize(plan, seed=1)
        common = pair_common_volumes(plan)
        ids_2, _ = assignment.passes_at(2)
        ids_4, _ = assignment.passes_at(4)
        overlap = np.intersect1d(ids_2, ids_4).size
        assert overlap == common[(2, 4)]

    def test_routes_by_vehicle(self, plan):
        assignment = TrafficAssignment.materialize(plan, seed=1)
        routes = assignment.routes_by_vehicle()
        assert len(routes) == 35
        lengths = sorted(len(r) for r in routes.values())
        assert lengths[0] == 2 and lengths[-1] == 4

    def test_passes_bulk(self, plan):
        assignment = TrafficAssignment.materialize(plan, seed=1)
        passes = assignment.passes([1, 2])
        assert set(passes) == {1, 2}


class TestCalibration:
    def test_anchor_scaled_to_target(self, plan):
        scaled = calibrate_to_node_volumes(plan, {2: 350}, anchor=2)
        assert node_volumes(scaled)[2] == pytest.approx(350, rel=0.05)

    def test_missing_anchor_target(self, plan):
        with pytest.raises(CalibrationError):
            calibrate_to_node_volumes(plan, {3: 10}, anchor=2)

    def test_anchor_without_traffic(self, plan):
        with pytest.raises(CalibrationError):
            calibrate_to_node_volumes(plan, {99: 10}, anchor=99)

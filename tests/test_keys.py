"""Tests for vehicle private keys."""

from repro.vcps.keys import KeyStore, generate_private_key


class TestGeneratePrivateKey:
    def test_range(self):
        for seed in range(10):
            key = generate_private_key(seed)
            assert 0 <= key < 2**63

    def test_deterministic_from_seed(self):
        assert generate_private_key(5) == generate_private_key(5)


class TestKeyStore:
    def test_key_stable_per_vehicle(self):
        store = KeyStore(seed=1)
        assert store.key_for(42) == store.key_for(42)

    def test_keys_differ_across_vehicles(self):
        store = KeyStore(seed=1)
        keys = {store.key_for(v) for v in range(200)}
        assert len(keys) == 200

    def test_len_and_contains(self):
        store = KeyStore(seed=1)
        assert 7 not in store
        store.key_for(7)
        assert 7 in store
        assert len(store) == 1

    def test_reproducible_store(self):
        a, b = KeyStore(seed=9), KeyStore(seed=9)
        assert [a.key_for(v) for v in range(5)] == [b.key_for(v) for v in range(5)]

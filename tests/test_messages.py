"""Tests for DSRC message formats."""

import pytest

from repro.errors import ProtocolError
from repro.vcps.ids import random_mac
from repro.vcps.messages import Query, Response
from repro.vcps.pki import CertificateAuthority


@pytest.fixture
def ca():
    return CertificateAuthority(seed=1)


class TestQuery:
    def test_valid(self, ca):
        query = Query(rsu_id=3, certificate=ca.issue(3), array_size=1024)
        assert query.array_size == 1024

    def test_non_power_of_two_size(self, ca):
        with pytest.raises(ProtocolError, match="power-of-two"):
            Query(rsu_id=3, certificate=ca.issue(3), array_size=1000)

    def test_certificate_subject_mismatch(self, ca):
        with pytest.raises(ProtocolError, match="does not match"):
            Query(rsu_id=3, certificate=ca.issue(4), array_size=1024)


class TestResponse:
    def test_valid(self):
        response = Response(mac=random_mac(1), bit_index=5)
        response.validate_for(64)  # does not raise

    def test_out_of_range_index(self):
        response = Response(mac=random_mac(1), bit_index=64)
        with pytest.raises(ProtocolError, match="outside"):
            response.validate_for(64)

    def test_negative_index(self):
        response = Response(mac=random_mac(1), bit_index=-1)
        with pytest.raises(ProtocolError):
            response.validate_for(64)

    def test_fixed_vendor_mac_rejected(self):
        """A vendor (globally administered) MAC would be linkable; the
        RSU refuses it."""
        response = Response(mac=0x00_1A_2B_3C_4D_5E, bit_index=5)
        with pytest.raises(ProtocolError, match="locally-administered"):
            response.validate_for(64)

"""Property and validation tests for the binary wire codec."""

import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bitarray import BitArray
from repro.core.reports import RsuReport
from repro.errors import WireError
from repro.service import wire

u32 = st.integers(min_value=0, max_value=(1 << 32) - 1)
u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
mac48 = st.integers(min_value=0, max_value=(1 << 48) - 1)


def roundtrip(message):
    frame = wire.encode_frame(message)
    decoded, consumed = wire.decode_frame(frame)
    assert consumed == len(frame)
    return decoded


class TestResponseRoundTrip:
    @given(rsu_id=u32, mac=mac48, bit_index=u32)
    def test_single(self, rsu_id, mac, bit_index):
        msg = wire.ResponseMsg(rsu_id=rsu_id, mac=mac, bit_index=bit_index)
        assert roundtrip(msg) == msg

    @given(
        rsu_id=u32,
        seq=u64,
        entries=st.lists(st.tuples(mac48, u32), max_size=64),
    )
    def test_batch(self, rsu_id, seq, entries):
        macs = np.array([m for m, _ in entries], dtype=np.uint64)
        idx = np.array([i for _, i in entries], dtype=np.uint32)
        msg = wire.ResponseBatch(
            rsu_id=rsu_id, macs=macs, bit_indices=idx, seq=seq
        )
        out = roundtrip(msg)
        assert out.rsu_id == rsu_id
        assert out.seq == seq
        assert np.array_equal(np.asarray(out.macs, dtype=np.uint64), macs)
        assert np.array_equal(
            np.asarray(out.bit_indices, dtype=np.uint32), idx
        )

    @given(seq=u64, duplicate=st.booleans())
    def test_batch_ack(self, seq, duplicate):
        msg = wire.BatchAck(seq=seq, duplicate=duplicate)
        assert roundtrip(msg) == msg

    def test_batch_rejects_mismatched_arrays(self):
        with pytest.raises(WireError):
            wire.ResponseBatch(
                rsu_id=1,
                macs=np.zeros(3, dtype=np.uint64),
                bit_indices=np.zeros(2, dtype=np.uint32),
            )

    def test_batch_rejects_wide_mac(self):
        msg = wire.ResponseBatch(
            rsu_id=1,
            macs=np.array([1 << 50], dtype=np.uint64),
            bit_indices=np.array([0], dtype=np.uint32),
        )
        with pytest.raises(WireError):
            msg.payload()


class TestSnapshotRoundTrip:
    @given(
        rsu_id=u32,
        period=u32,
        counter=u64,
        seq=u64,
        log_m=st.integers(min_value=0, max_value=14),
        data=st.data(),
    )
    @settings(max_examples=60)
    def test_arbitrary_reports(
        self, rsu_id, period, counter, seq, log_m, data
    ):
        """Counters, power-of-two sizes, and bit patterns all survive
        the wire (the satellite property test from the issue)."""
        size = 1 << log_m
        ones = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=size - 1), max_size=size
            )
        )
        report = RsuReport(
            rsu_id=rsu_id,
            counter=counter,
            bits=BitArray.from_indices(size, np.array(ones, dtype=np.int64))
            if ones
            else BitArray(size),
            period=period,
        )
        snap = roundtrip(wire.Snapshot.from_report(report, seq=seq))
        assert snap.seq == seq
        back = snap.to_report()
        assert back.rsu_id == report.rsu_id
        assert back.period == report.period
        assert back.counter == report.counter
        assert back.bits == report.bits

    def test_padding_bits_must_be_zero(self):
        snap = wire.Snapshot.from_report(
            RsuReport(rsu_id=1, counter=0, bits=BitArray(4))
        )
        frame = bytearray(wire.encode_frame(snap))
        frame[-1] |= 0x0F  # set the 4 padding bits past array_size
        with pytest.raises(WireError):
            wire.decode_frame(bytes(frame))

    def test_wrong_packed_length_rejected(self):
        with pytest.raises(WireError):
            wire.Snapshot(
                rsu_id=1, period=0, counter=0, array_size=16, packed_bits=b"\0"
            ).payload()


class TestControlAndQueryRoundTrip:
    @given(rsu_id=u32, period=u32, seq=u64)
    def test_snapshot_ack(self, rsu_id, period, seq):
        msg = wire.SnapshotAck(rsu_id=rsu_id, period=period, seq=seq)
        assert roundtrip(msg) == msg

    @given(period=u32, snapshots=u32)
    def test_end_period(self, period, snapshots):
        assert roundtrip(wire.EndPeriod(period=period)) == wire.EndPeriod(
            period=period
        )
        ack = wire.EndPeriodAck(period=period, snapshots=snapshots)
        assert roundtrip(ack) == ack

    @given(rsu_x=u32, rsu_y=u32, period=u32)
    def test_volume_query(self, rsu_x, rsu_y, period):
        msg = wire.VolumeQuery(rsu_x=rsu_x, rsu_y=rsu_y, period=period)
        assert roundtrip(msg) == msg

    @given(rsu_id=u32, period=u32, counter=u64)
    def test_point_messages(self, rsu_id, period, counter):
        assert roundtrip(
            wire.PointQuery(rsu_id=rsu_id, period=period)
        ) == wire.PointQuery(rsu_id=rsu_id, period=period)
        msg = wire.PointVolume(rsu_id=rsu_id, period=period, counter=counter)
        assert roundtrip(msg) == msg

    @given(
        floats=st.lists(
            st.floats(allow_nan=False), min_size=4, max_size=4
        ),
        m_x=u32,
        m_y=u32,
        n_x=u64,
        n_y=u64,
        s=u32,
    )
    def test_estimate(self, floats, m_x, m_y, n_x, n_y, s):
        msg = wire.EstimateMsg(*floats, m_x=m_x, m_y=m_y, n_x=n_x, n_y=n_y, s=s)
        assert roundtrip(msg) == msg

    @given(code=st.integers(min_value=0, max_value=65535), text=st.text(max_size=200))
    def test_error(self, code, text):
        msg = wire.ErrorMsg(code=code, message=text)
        assert roundtrip(msg) == msg


class TestStrictFraming:
    def frame(self):
        return wire.encode_frame(wire.EndPeriod(period=3))

    def test_bad_magic(self):
        with pytest.raises(WireError, match="magic"):
            wire.decode_frame(b"XX" + self.frame()[2:])

    def test_unsupported_version(self):
        frame = bytearray(self.frame())
        frame[2] = 9
        with pytest.raises(WireError, match="version"):
            wire.decode_frame(bytes(frame))

    def test_unknown_type(self):
        frame = bytearray(self.frame())
        frame[3] = 0x6E
        with pytest.raises(WireError, match="unknown message type"):
            wire.decode_frame(bytes(frame))

    def test_truncated_payload(self):
        with pytest.raises(WireError):
            wire.decode_frame(self.frame()[:-1])

    def test_truncated_header(self):
        with pytest.raises(WireError):
            wire.decode_frame(self.frame()[:5])

    def test_declared_length_capped(self):
        header = struct.pack(
            ">2sBBII",
            wire.MAGIC,
            wire.VERSION,
            wire.T_ERROR,
            wire.MAX_PAYLOAD + 1,
            0,
        )
        with pytest.raises(WireError, match="MAX_PAYLOAD"):
            wire.decode_frame(header)

    def test_payload_length_must_match_type(self):
        # An EndPeriod frame with an extra byte of payload.
        good = wire.EndPeriod(period=1).payload() + b"\0"
        frame = (
            struct.pack(
                ">2sBBII",
                wire.MAGIC,
                wire.VERSION,
                wire.T_END_PERIOD,
                len(good),
                zlib.crc32(good) & 0xFFFFFFFF,
            )
            + good
        )
        with pytest.raises(WireError):
            wire.decode_frame(frame)

    def test_payload_crc_is_checked(self):
        frame = bytearray(wire.encode_frame(wire.EndPeriod(period=3)))
        frame[-1] ^= 0x10  # flip one payload bit; length/type stay valid
        with pytest.raises(WireError, match="CRC"):
            wire.decode_frame(bytes(frame))

    def test_header_crc_field_is_checked(self):
        frame = bytearray(wire.encode_frame(wire.EndPeriod(period=3)))
        frame[8] ^= 0x01  # corrupt the declared CRC itself
        with pytest.raises(WireError, match="CRC"):
            wire.decode_frame(bytes(frame))

    def test_trailing_bytes_not_consumed(self):
        frame = self.frame()
        _, consumed = wire.decode_frame(frame + b"extra")
        assert consumed == len(frame)

    def test_mac_range_enforced_on_encode(self):
        with pytest.raises(WireError):
            wire.ResponseMsg(rsu_id=1, mac=1 << 48, bit_index=0).payload()

"""Smoke test: the quickstart example runs and reports a sane result.

The longer examples are exercised by the harness and benchmarks; the
quickstart is the documented first touch, so it must keep working
verbatim.
"""

import runpy
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestQuickstart:
    def test_runs_and_is_accurate(self, capsys):
        runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "error ratio" in out
        # Parse the reported error ratio and require a sane value.
        line = next(l for l in out.splitlines() if "error ratio" in l)
        value = float(line.split("=")[-1].strip().rstrip("%"))
        assert value < 25.0

    def test_all_examples_exist_and_have_docstrings(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 6
        for script in scripts:
            text = script.read_text()
            assert text.lstrip().startswith(('#!/usr/bin/env python', '"""')), script
            assert '"""' in text

"""Fake-clock tests for the shared retry/backoff policy.

The live services (gateway snapshot uploads, loadgen reconnects) all
share :mod:`repro.service.retry`; these tests pin down the schedule —
jittered exponential growth, the delay cap, and give-up behaviour —
without ever sleeping for real.
"""

import asyncio
import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import (
    ConfigurationError,
    RetryExhaustedError,
    WireError,
)
from repro.service.retry import RetryPolicy, retry_async


def run(coro):
    return asyncio.run(coro)


class FakeClock:
    """Records requested sleeps instead of waiting."""

    def __init__(self):
        self.slept = []

    async def sleep(self, seconds):
        self.slept.append(seconds)


class TestSchedule:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=5,
            base_delay=0.1,
            multiplier=2.0,
            max_delay=100.0,
            jitter=0.0,
        )
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_cap_applies_before_jitter(self):
        policy = RetryPolicy(
            max_attempts=8,
            base_delay=1.0,
            multiplier=10.0,
            max_delay=5.0,
            jitter=0.0,
        )
        assert list(policy.delays()) == pytest.approx(
            [1.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0]
        )

    @given(
        attempt=st.integers(min_value=0, max_value=20),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_jitter_stays_within_band(self, attempt, seed):
        policy = RetryPolicy(
            max_attempts=30,
            base_delay=0.05,
            multiplier=2.0,
            max_delay=3.0,
            jitter=0.25,
        )
        exact = policy.delay(attempt)  # no rng -> deterministic
        jittered = policy.delay(attempt, random.Random(seed))
        assert exact * 0.75 - 1e-12 <= jittered <= exact * 1.25 + 1e-12

    def test_jitter_is_seed_deterministic(self):
        policy = RetryPolicy(max_attempts=6, jitter=0.3)
        a = list(policy.delays(random.Random(42)))
        b = list(policy.delays(random.Random(42)))
        c = list(policy.delays(random.Random(43)))
        assert a == b
        assert a != c

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy().delay(-1)


class TestRetryAsync:
    def test_success_after_transient_failures(self):
        clock = FakeClock()
        attempts = []

        async def flaky():
            attempts.append(len(attempts))
            if len(attempts) < 3:
                raise ConnectionResetError("boom")
            return "ok"

        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0, jitter=0.0
        )
        result = run(
            retry_async(flaky, policy=policy, sleep=clock.sleep)
        )
        assert result == "ok"
        assert len(attempts) == 3
        # One backoff per failure, following the schedule exactly.
        assert clock.slept == pytest.approx([0.1, 0.2])

    def test_gives_up_after_max_attempts(self):
        clock = FakeClock()
        calls = []

        async def always_fails():
            calls.append(1)
            raise asyncio.TimeoutError()

        policy = RetryPolicy(
            max_attempts=4, base_delay=0.05, multiplier=2.0, jitter=0.0
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            run(
                retry_async(
                    always_fails, policy=policy, sleep=clock.sleep
                )
            )
        assert len(calls) == 4
        assert excinfo.value.attempts == 4
        assert isinstance(excinfo.value.__cause__, asyncio.TimeoutError)
        # No sleep after the final, losing attempt.
        assert clock.slept == pytest.approx([0.05, 0.1, 0.2])

    def test_non_retryable_error_propagates_immediately(self):
        clock = FakeClock()

        async def fails_strangely():
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            run(
                retry_async(
                    fails_strangely,
                    policy=RetryPolicy(max_attempts=5),
                    sleep=clock.sleep,
                )
            )
        assert clock.slept == []

    def test_custom_retry_on_and_hook(self):
        clock = FakeClock()
        seen = []

        async def wire_flaky():
            if len(seen) < 2:
                raise WireError("corrupt frame")
            return 7

        policy = RetryPolicy(max_attempts=5, base_delay=0.01, jitter=0.0)
        result = run(
            retry_async(
                wire_flaky,
                policy=policy,
                retry_on=(WireError,),
                sleep=clock.sleep,
                on_retry=lambda attempt, exc: seen.append((attempt, exc)),
            )
        )
        assert result == 7
        assert [a for a, _ in seen] == [0, 1]
        assert all(isinstance(e, WireError) for _, e in seen)

    def test_jittered_loop_is_seed_deterministic(self):
        async def run_once(seed):
            clock = FakeClock()

            async def always_fails():
                raise OSError("down")

            with pytest.raises(RetryExhaustedError):
                await retry_async(
                    always_fails,
                    policy=RetryPolicy(
                        max_attempts=4, base_delay=0.1, jitter=0.5
                    ),
                    rng=random.Random(seed),
                    sleep=clock.sleep,
                )
            return clock.slept

        assert run(run_once(9)) == run(run_once(9))
        assert run(run_once(9)) != run(run_once(10))

"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_specializations(self):
        assert issubclass(errors.SaturatedArrayError, errors.EstimationError)
        assert issubclass(errors.AuthenticationError, errors.ProtocolError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.CalibrationError("x")

    def test_library_raises_only_repro_errors_for_config(self):
        """A representative misuse from each package lands under
        ReproError, so callers have one catch point."""
        from repro.core.bitarray import BitArray
        from repro.core.scheme import VlmScheme
        from repro.roadnet.trips import TripTable
        from repro.vcps.history import VolumeHistory

        for action in (
            lambda: BitArray(0),
            lambda: VlmScheme({}),
            lambda: TripTable({(1, 1): 5}),
            lambda: VolumeHistory({1: -5}),
        ):
            with pytest.raises(errors.ReproError):
                action()

"""Consistency checks between the CLI registry and the documentation."""

from pathlib import Path


from repro.cli import EXPERIMENTS

ROOT = Path(__file__).resolve().parent.parent


class TestRegistryCompleteness:
    def test_every_experiment_runs_quick(self):
        """Each registry entry at least constructs and renders in quick
        mode.  Heavy entries are exercised individually elsewhere; this
        guards against a registered name pointing at a broken import."""
        fast = {
            "fig1",
            "fig3",
            "fig2",
            "tradeoff",
            "overhead",
            "ablations",
            "scaling",
            "attacks",
        }
        for name in fast:
            result = EXPERIMENTS[name](True)
            text = result.render()
            assert isinstance(text, str) and text

    def test_readme_documents_the_cli(self):
        readme = (ROOT / "README.md").read_text()
        for name in ("table1", "fig2", "fig4", "fig5", "accuracy", "matrix"):
            assert f"repro.cli {name}" in readme

    def test_design_md_indexes_every_paper_artifact(self):
        design = (ROOT / "DESIGN.md").read_text()
        for artifact in ("Fig. 2", "Table I", "Fig. 4", "Fig. 5"):
            assert artifact in design

    def test_experiments_md_covers_extensions(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        for keyword in (
            "traffic matrix",
            "tradeoff",
            "Multi-period",
            "Attack resilience",
            "calibration",
            "scaling",
        ):
            assert keyword.lower() in experiments.lower(), keyword

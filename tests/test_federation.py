"""Federation integration: sharded ingest, handoffs, OR-merge, kill.

The headline properties, per the issue's acceptance criteria:

* a day partitioned across N shards decodes bit-identically to the
  unsharded in-process run — including when RSUs are handed between
  shards mid-period, so their responses land on two shards;
* killing a shard mid-period, restarting it, resending, then killing
  the collector and replaying its write-ahead log reproduces the
  unsharded golden matrix exactly.
"""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.federation.chaos import shard_kill_scenario
from repro.federation.collector import FederatedCollector
from repro.federation.router import ShardRouter
from repro.federation.runtime import (
    ShardClient,
    run_federated_loadgen,
    shard_port_plan,
    start_federation,
)
from repro.federation.shards import ShardGateway, spec_provisioner
from repro.service import wire
from repro.service.runtime import DeploymentSpec


@pytest.fixture(scope="module")
def spec():
    # Small but non-trivial: every node carries traffic, all 276 pairs
    # are queryable.
    return DeploymentSpec(total_trips=1_500, seed=13)


def run(coroutine):
    return asyncio.run(coroutine)


class TestShardRouter:
    def test_home_assignment_is_modulo(self):
        router = ShardRouter(3)
        assert [router.shard_for(r) for r in range(6)] == [
            0, 1, 2, 0, 1, 2,
        ]

    def test_partition_covers_every_shard(self):
        router = ShardRouter(4)
        groups = router.partition([0, 1, 2])
        assert set(groups) == {0, 1, 2, 3}
        assert groups[3] == []

    def test_reassign_overrides_and_counts(self):
        router = ShardRouter(2)
        router.reassign(4, 1)
        assert router.shard_for(4) == 1
        assert router.rebalances == 1
        assert router.overrides == {4: 1}

    def test_reassign_rejects_unknown_shard(self):
        with pytest.raises(ConfigurationError):
            ShardRouter(2).reassign(0, 5)

    def test_shard_count_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ShardRouter(0)

    def test_restored_assignment_is_not_a_new_rebalance(self):
        router = ShardRouter(2, assignment={3: 0})
        assert router.shard_for(3) == 0
        assert router.rebalances == 0


class TestShardPortPlan:
    def test_consecutive_from_base(self):
        assert shard_port_plan(8701, 3, 8710) == [8701, 8702, 8703]

    def test_skips_the_collector_port(self):
        assert shard_port_plan(8701, 3, 8702) == [8701, 8703, 8704]


class TestFederatedMerge:
    def test_sharded_day_is_bit_identical(self, spec):
        async def body():
            plane = await start_federation(spec, shards=3)
            try:
                ports = plane.shard_ports()
                return await run_federated_loadgen(
                    spec,
                    shards=3,
                    shard_ports=[ports[i] for i in range(3)],
                    collector_port=plane.collector.port,
                    max_queries=40,
                )
            finally:
                await plane.stop()

        result = run(body())
        assert result.bit_identical
        assert result.handoffs == 0
        assert result.snapshots_acked == len(spec.scheme.rsu_ids)
        # Every shard carried part of the fleet.
        assert all(count > 0 for count in result.per_shard.values())

    def test_midperiod_handoff_is_bit_identical(self, spec):
        """The tentpole property: an RSU's responses split across two
        shards OR-merge into exactly the unsharded result."""

        async def body():
            plane = await start_federation(spec, shards=3)
            try:
                ports = plane.shard_ports()
                result = await run_federated_loadgen(
                    spec,
                    shards=3,
                    shard_ports=[ports[i] for i in range(3)],
                    collector_port=plane.collector.port,
                    rebalance=3,
                    max_queries=40,
                )
                merged = plane.collector.snapshots_merged
                return result, merged
            finally:
                await plane.stop()

        result, merged = run(body())
        assert result.bit_identical
        assert result.handoffs == 3
        # The moved RSUs upload one partial from each side of the
        # handoff, so there are more partials than RSUs.
        assert merged == len(spec.scheme.rsu_ids) + 3
        assert result.snapshots_acked == len(spec.scheme.rsu_ids) + 3

    def test_partial_retransmission_is_deduped_not_resummed(self, spec):
        """Re-uploading a merged partial must re-ack without touching
        the counter (summing it twice would corrupt n_x)."""
        collector = FederatedCollector(spec.build_central_server())
        report = next(iter(spec.reference_reports().values()))
        snap = wire.ShardSnapshot.from_report(report, shard_id=0, seq=7)
        assert isinstance(collector._handle(snap), wire.SnapshotAck)
        before = collector.server.point_volume(report.rsu_id, 0)
        # A gateway that missed the ack retransmits the identical
        # (shard, seq) partial.
        retransmit = collector._handle(snap)
        assert isinstance(retransmit, wire.SnapshotAck)
        assert collector.server.point_volume(report.rsu_id, 0) == before
        assert collector.snapshots_deduped == 1

    def test_mixing_plain_and_shard_snapshots_is_refused(self, spec):
        async def body():
            collector = FederatedCollector(spec.build_central_server())
            report = next(iter(spec.reference_reports().values()))
            shard_snap = wire.ShardSnapshot.from_report(
                report, shard_id=0, seq=1
            )
            plain = wire.Snapshot.from_report(report, seq=99)
            first = collector._handle(shard_snap)
            second = collector._handle(plain)
            return first, second

        first, second = run(body())
        assert isinstance(first, wire.SnapshotAck)
        assert isinstance(second, wire.ErrorMsg)
        assert second.code == wire.E_DUPLICATE

    def test_array_size_mismatch_is_nacked(self, spec):
        async def body():
            collector = FederatedCollector(spec.build_central_server())
            report = next(iter(spec.reference_reports().values()))
            good = wire.ShardSnapshot.from_report(
                report, shard_id=0, seq=1
            )
            bad = wire.ShardSnapshot(
                shard_id=1,
                rsu_id=report.rsu_id,
                period=report.period,
                counter=3,
                array_size=8,
                packed_bits=b"\xff",
                seq=2,
            )
            collector._handle(good)
            return collector._handle(bad)

        reply = run(body())
        assert isinstance(reply, wire.ErrorMsg)
        assert reply.code == wire.E_MALFORMED


class TestShardGatewayHandoff:
    def test_handoff_provisions_and_acks(self, spec):
        async def body():
            plane = await start_federation(spec, shards=2)
            try:
                rsu_id = next(
                    r for r in sorted(spec.scheme.rsu_ids)
                    if plane.router.shard_for(r) == 0
                )
                target = plane.shards[1]
                assert rsu_id not in target.rsus
                client = ShardClient("127.0.0.1", target.port)
                await client.handoff(rsu_id, 0, 1, 0)
                # Retransmission acks again without zeroing state.
                await client.handoff(rsu_id, 0, 1, 0)
                await client.close()
                return rsu_id in target.rsus, target.handoffs_accepted
            finally:
                await plane.stop()

        provisioned, accepted = run(body())
        assert provisioned
        assert accepted == 1

    def test_misaddressed_handoff_is_refused(self, spec):
        async def body():
            plane = await start_federation(spec, shards=2)
            try:
                gateway = plane.shards[0]
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.port
                )
                await wire.write_message(
                    writer,
                    wire.Handoff(
                        rsu_id=1, from_shard=0, to_shard=1, period=0
                    ),
                )
                reply = await wire.read_message(reader)
                writer.close()
                await writer.wait_closed()
                return reply
            finally:
                await plane.stop()

        reply = run(body())
        assert isinstance(reply, wire.ErrorMsg)
        assert reply.code == wire.E_MALFORMED

    def test_plain_gateway_still_nacks_handoff(self, spec):
        """The base gateway's _handle_extra hook refuses federation
        frames instead of crashing the connection handler."""
        from repro.service.runtime import start_services

        async def body():
            gateway, collector = await start_services(
                spec, gateway_port=0, collector_port=0
            )
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.port
                )
                await wire.write_message(
                    writer,
                    wire.Handoff(
                        rsu_id=1, from_shard=0, to_shard=0, period=0
                    ),
                )
                reply = await wire.read_message(reader)
                writer.close()
                await writer.wait_closed()
                return reply
            finally:
                await gateway.stop()
                await collector.stop()

        reply = run(body())
        assert isinstance(reply, wire.ErrorMsg)
        assert reply.code == wire.E_MALFORMED


class TestShardKillRecovery:
    def test_kill_restart_replay_is_bit_identical(self, spec, tmp_path):
        report = run(
            shard_kill_scenario(
                spec, shards=3, wal_path=tmp_path / "collector.wal"
            )
        )
        assert report.passed
        assert report.live_identical
        assert report.recovered_identical
        assert report.responses_resent > 0
        assert report.wal_records == report.wal_replayed
        assert report.pairs_compared == 276

    def test_restart_requires_kill_first(self, spec):
        async def body():
            plane = await start_federation(spec, shards=2)
            try:
                with pytest.raises(ConfigurationError):
                    await plane.restart_shard(0)
            finally:
                await plane.stop()

        run(body())


class TestRetentionWindow:
    def test_merge_dedup_keys_are_evicted(self, spec):
        async def body():
            collector = FederatedCollector(
                spec.build_central_server(), retention_periods=1
            )
            report = next(iter(spec.reference_reports().values()))
            for period in range(3):
                snap = wire.ShardSnapshot(
                    shard_id=0,
                    rsu_id=report.rsu_id,
                    period=period,
                    counter=report.counter,
                    array_size=report.array_size,
                    packed_bits=report.bits.to_bytes(),
                    seq=period + 1,
                )
                assert isinstance(
                    collector._handle(snap), wire.SnapshotAck
                )
            return collector

        collector = run(body())
        # retention_periods=1 keeps only periods newer than max-1,
        # i.e. just period 2's key survives.
        assert collector.dedup_keys_retained == 1
        assert collector.registry.counter(
            "collector.dedup_keys_evicted_total"
        ).value == 2


class TestSpecProvisioner:
    def test_provisioned_rsu_matches_the_fleet(self, spec):
        provision = spec_provisioner(spec)
        fleet = spec.build_rsus()
        rsu_id = sorted(fleet)[0]
        fresh = provision(rsu_id)
        assert fresh.array_size == fleet[rsu_id].array_size
        assert fresh.counter == 0

    def test_shard_gateway_requires_provisioner_for_unknown_rsu(
        self, spec
    ):
        async def body():
            gateway = ShardGateway(0, {}, provisioner=None)
            await gateway.start("127.0.0.1", 0)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.port
                )
                await wire.write_message(
                    writer,
                    wire.Handoff(
                        rsu_id=7, from_shard=1, to_shard=0, period=0
                    ),
                )
                reply = await wire.read_message(reader)
                writer.close()
                await writer.wait_closed()
                return reply
            finally:
                await gateway.stop()

        reply = run(body())
        assert isinstance(reply, wire.ErrorMsg)
        assert reply.code == wire.E_UNKNOWN_RSU

"""Tests for the road network graph wrapper."""

import pytest

from repro.errors import NetworkDataError
from repro.roadnet.graph import Arc, RoadNetwork


@pytest.fixture
def triangle():
    """1 <-> 2 <-> 3, plus a direct slow 1 -> 3."""
    arcs = [
        Arc(1, 2, free_flow_time=1.0),
        Arc(2, 1, free_flow_time=1.0),
        Arc(2, 3, free_flow_time=1.0),
        Arc(3, 2, free_flow_time=1.0),
        Arc(1, 3, free_flow_time=5.0),
        Arc(3, 1, free_flow_time=5.0),
    ]
    return RoadNetwork("triangle", arcs)


class TestArc:
    def test_self_loop_rejected(self):
        with pytest.raises(NetworkDataError):
            Arc(1, 1)

    def test_invalid_attributes(self):
        with pytest.raises(NetworkDataError):
            Arc(1, 2, free_flow_time=0)
        with pytest.raises(NetworkDataError):
            Arc(1, 2, capacity=0)


class TestRoadNetwork:
    def test_counts(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_arcs == 6
        assert triangle.nodes == [1, 2, 3]

    def test_duplicate_arc_rejected(self):
        with pytest.raises(NetworkDataError, match="duplicate"):
            RoadNetwork("bad", [Arc(1, 2), Arc(1, 2)])

    def test_empty_rejected(self):
        with pytest.raises(NetworkDataError):
            RoadNetwork("empty", [])

    def test_arcs_round_trip(self, triangle):
        arcs = triangle.arcs()
        assert len(arcs) == 6
        assert all(isinstance(a, Arc) for a in arcs)

    def test_successors(self, triangle):
        assert triangle.successors(1) == [2, 3]
        with pytest.raises(NetworkDataError):
            triangle.successors(9)

    def test_strongly_connected(self, triangle):
        assert triangle.is_strongly_connected()
        one_way = RoadNetwork("oneway", [Arc(1, 2)])
        assert not one_way.is_strongly_connected()


class TestShortestPath:
    def test_prefers_fast_two_hop(self, triangle):
        # 1 -> 2 -> 3 costs 2 < direct arc's 5.
        assert triangle.shortest_path(1, 3) == [1, 2, 3]

    def test_path_time(self, triangle):
        assert triangle.path_time([1, 2, 3]) == pytest.approx(2.0)
        assert triangle.path_time([1, 3]) == pytest.approx(5.0)

    def test_path_time_missing_arc(self, triangle):
        with pytest.raises(NetworkDataError):
            triangle.path_time([2, 2])

    def test_unknown_endpoint(self, triangle):
        with pytest.raises(NetworkDataError):
            triangle.shortest_path(1, 99)

    def test_no_path(self):
        net = RoadNetwork("disc", [Arc(1, 2), Arc(3, 4)])
        with pytest.raises(NetworkDataError, match="no path"):
            net.shortest_path(1, 4)

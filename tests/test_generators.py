"""Tests for synthetic road network generators."""

import pytest

from repro.errors import NetworkDataError
from repro.roadnet.generators import (
    expected_nodes_grid,
    expected_nodes_ring_radial,
    grid_network,
    ring_radial_network,
)
from repro.roadnet.gravity import gravity_trip_table
from repro.roadnet.routing import assign_routes
from repro.roadnet.volumes import node_volumes


class TestGridNetwork:
    def test_dimensions(self):
        network = grid_network(4, 5)
        assert network.num_nodes == expected_nodes_grid(4, 5) == 20
        # streets: 4*(5-1) horizontal + 5*(4-1) vertical = 31 -> 62 arcs
        assert network.num_arcs == 62

    def test_strongly_connected(self):
        assert grid_network(3, 3).is_strongly_connected()

    def test_manhattan_shortest_paths(self):
        network = grid_network(4, 4)
        # corner (node 1) to opposite corner (node 16): 6 blocks.
        path = network.shortest_path(1, 16)
        assert network.path_time(path) == pytest.approx(6.0)

    def test_minimum_size(self):
        with pytest.raises(NetworkDataError):
            grid_network(1, 5)

    def test_custom_attributes(self):
        network = grid_network(2, 2, block_time=2.5, capacity=123.0)
        arc = network.arcs()[0]
        assert arc.free_flow_time == 2.5
        assert arc.capacity == 123.0


class TestRingRadialNetwork:
    def test_dimensions(self):
        network = ring_radial_network(3, 6)
        assert network.num_nodes == expected_nodes_ring_radial(3, 6) == 19

    def test_strongly_connected(self):
        assert ring_radial_network(2, 5).is_strongly_connected()

    def test_minimum_size(self):
        with pytest.raises(NetworkDataError):
            ring_radial_network(0, 6)
        with pytest.raises(NetworkDataError):
            ring_radial_network(1, 2)

    def test_centre_is_the_hub(self):
        """Uniform gravity demand routes through the centre: node 1
        carries the largest transit volume — the hub/collector skew
        that motivates variable-length arrays."""
        network = ring_radial_network(3, 8)
        weights = {node: 1.0 for node in network.nodes}
        trips = gravity_trip_table(
            network, total_trips=50_000, gamma=0.5, weights=weights
        )
        volumes = node_volumes(assign_routes(network, trips))
        assert max(volumes, key=volumes.get) == 1
        # The skew is substantial: centre sees several times the median.
        ordered = sorted(volumes.values())
        median = ordered[len(ordered) // 2]
        assert volumes[1] > 2 * median

    def test_cross_city_goes_through_centre(self):
        network = ring_radial_network(2, 8)
        # Opposite outer-ring nodes: spoke 0 and spoke 4 on ring 2.
        a = 1 + 1 * 8 + 0 + 1
        b = 1 + 1 * 8 + 4 + 1
        path = network.shortest_path(a, b)
        assert 1 in path

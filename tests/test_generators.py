"""Tests for synthetic road network generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkDataError
from repro.roadnet.generators import (
    expected_nodes_grid,
    expected_nodes_ring_radial,
    grid_network,
    ring_radial_network,
)
from repro.roadnet.gravity import gravity_trip_table
from repro.roadnet.routing import assign_routes
from repro.roadnet.volumes import node_volumes


class TestGridNetwork:
    def test_dimensions(self):
        network = grid_network(4, 5)
        assert network.num_nodes == expected_nodes_grid(4, 5) == 20
        # streets: 4*(5-1) horizontal + 5*(4-1) vertical = 31 -> 62 arcs
        assert network.num_arcs == 62

    def test_strongly_connected(self):
        assert grid_network(3, 3).is_strongly_connected()

    def test_manhattan_shortest_paths(self):
        network = grid_network(4, 4)
        # corner (node 1) to opposite corner (node 16): 6 blocks.
        path = network.shortest_path(1, 16)
        assert network.path_time(path) == pytest.approx(6.0)

    def test_minimum_size(self):
        with pytest.raises(NetworkDataError):
            grid_network(1, 5)

    def test_custom_attributes(self):
        network = grid_network(2, 2, block_time=2.5, capacity=123.0)
        arc = network.arcs()[0]
        assert arc.free_flow_time == 2.5
        assert arc.capacity == 123.0


class TestRingRadialNetwork:
    def test_dimensions(self):
        network = ring_radial_network(3, 6)
        assert network.num_nodes == expected_nodes_ring_radial(3, 6) == 19

    def test_strongly_connected(self):
        assert ring_radial_network(2, 5).is_strongly_connected()

    def test_minimum_size(self):
        with pytest.raises(NetworkDataError):
            ring_radial_network(0, 6)
        with pytest.raises(NetworkDataError):
            ring_radial_network(1, 2)

    def test_centre_is_the_hub(self):
        """Uniform gravity demand routes through the centre: node 1
        carries the largest transit volume — the hub/collector skew
        that motivates variable-length arrays."""
        network = ring_radial_network(3, 8)
        weights = {node: 1.0 for node in network.nodes}
        trips = gravity_trip_table(
            network, total_trips=50_000, gamma=0.5, weights=weights
        )
        volumes = node_volumes(assign_routes(network, trips))
        assert max(volumes, key=volumes.get) == 1
        # The skew is substantial: centre sees several times the median.
        ordered = sorted(volumes.values())
        median = ordered[len(ordered) // 2]
        assert volumes[1] > 2 * median

    def test_cross_city_goes_through_centre(self):
        network = ring_radial_network(2, 8)
        # Opposite outer-ring nodes: spoke 0 and spoke 4 on ring 2.
        a = 1 + 1 * 8 + 0 + 1
        b = 1 + 1 * 8 + 4 + 1
        path = network.shortest_path(a, b)
        assert 1 in path


class TestTopologyProperties:
    """Hypothesis invariants over the whole parametric families."""

    @given(rows=st.integers(2, 8), cols=st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_grid_invariants(self, rows, cols):
        network = grid_network(rows, cols)
        assert network.num_nodes == expected_nodes_grid(rows, cols)
        # Two directed arcs per interior street segment.
        streets = rows * (cols - 1) + cols * (rows - 1)
        assert network.num_arcs == 2 * streets
        assert set(network.nodes) == set(range(1, rows * cols + 1))
        assert network.is_strongly_connected()

    @given(rings=st.integers(1, 5), spokes=st.integers(3, 10))
    @settings(max_examples=25, deadline=None)
    def test_ring_radial_invariants(self, rings, spokes):
        network = ring_radial_network(rings, spokes)
        assert network.num_nodes == expected_nodes_ring_radial(rings, spokes)
        assert set(network.nodes) == set(range(1, 1 + rings * spokes + 1))
        assert network.is_strongly_connected()

    @given(rows=st.integers(2, 6), cols=st.integers(2, 6))
    @settings(max_examples=15, deadline=None)
    def test_generation_is_deterministic(self, rows, cols):
        """The generators take no seed: two builds must be identical
        arc for arc (the scenario zoo's bit-identity contract needs
        this)."""
        a, b = grid_network(rows, cols), grid_network(rows, cols)
        assert [
            (arc.tail, arc.head, arc.free_flow_time, arc.capacity)
            for arc in a.arcs()
        ] == [
            (arc.tail, arc.head, arc.free_flow_time, arc.capacity)
            for arc in b.arcs()
        ]

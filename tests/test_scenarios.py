"""Tests for the named paper scenarios."""

from repro.traffic.scenarios import (
    FIG45_SWEEP,
    S_VALUES,
    TABLE1_N_Y,
    TABLE1_PAIRS,
    TABLE1_RSU_Y,
    TRAFFIC_RATIOS,
    table1_volumes,
)


class TestFig45Sweep:
    def test_paper_grid(self):
        values = FIG45_SWEEP.n_c_values()
        # 0.01 n_x .. 0.5 n_x step 0.001 n_x with n_x = 10,000.
        assert values[0] == 100
        assert values[-1] == 5_000
        assert values[1] - values[0] == 10
        assert len(values) == 491

    def test_parameters(self):
        assert FIG45_SWEEP.n_x == 10_000
        assert FIG45_SWEEP.s == 2


class TestTable1Data:
    def test_anchor(self):
        assert TABLE1_RSU_Y == 10
        assert TABLE1_N_Y == 451_000

    def test_rows_match_paper(self):
        assert [p.rsu_x for p in TABLE1_PAIRS] == [15, 12, 7, 24, 6, 18, 2, 3]
        assert [p.n_x for p in TABLE1_PAIRS] == [
            213_000, 140_000, 121_000, 78_000, 76_000, 47_000, 40_000, 28_000
        ]
        assert [p.n_c for p in TABLE1_PAIRS] == [
            40_000, 20_000, 19_000, 8_000, 8_000, 7_000, 6_000, 3_000
        ]

    def test_sorted_by_difference_ratio(self):
        ratios = [p.traffic_difference_ratio for p in TABLE1_PAIRS]
        assert ratios == sorted(ratios)
        # Paper quotes d = 2.117 for node 15 and 16.107 for node 3.
        assert ratios[0] == round(451 / 213, 3) or abs(ratios[0] - 2.117) < 0.01
        assert abs(ratios[-1] - 16.107) < 0.01

    def test_volumes_map(self):
        volumes = table1_volumes()
        assert volumes[10] == 451_000
        assert len(volumes) == 9


class TestConstants:
    def test_ratios_and_s(self):
        assert TRAFFIC_RATIOS == (1, 10, 50)
        assert S_VALUES == (2, 5, 10)

"""Validation of the Section V bias/variance closed forms against MC."""

import pytest

from repro.accuracy.bias import expected_estimate, relative_bias
from repro.accuracy.montecarlo import simulate_accuracy
from repro.accuracy.variance import estimator_stddev, estimator_variance
from repro.errors import ConfigurationError


class TestBias:
    def test_expected_estimate_near_truth(self):
        value = expected_estimate(2_000, 8_000, 500, 8_192, 32_768, 2)
        assert value == pytest.approx(500, rel=0.02)

    def test_exact_and_binomial_close(self):
        a = expected_estimate(2_000, 8_000, 500, 8_192, 32_768, 2, exact=False)
        b = expected_estimate(2_000, 8_000, 500, 8_192, 32_768, 2, exact=True)
        assert a == pytest.approx(b, rel=0.05)

    def test_relative_bias_small(self):
        bias = relative_bias(2_000, 8_000, 500, 8_192, 32_768, 2, exact=True)
        assert abs(bias) < 0.02

    def test_relative_bias_requires_positive_nc(self):
        with pytest.raises(ConfigurationError):
            relative_bias(100, 100, 0, 256, 256, 2)


class TestVariance:
    def test_positive(self):
        assert estimator_variance(2_000, 8_000, 500, 8_192, 32_768, 2) > 0

    def test_paper_form_differs(self):
        """The paper's printed C (no factor 2 on cross terms) gives a
        different — larger — variance; we expose both."""
        corrected = estimator_variance(2_000, 8_000, 500, 8_192, 32_768, 2)
        paper = estimator_variance(
            2_000, 8_000, 500, 8_192, 32_768, 2, paper_form=True
        )
        assert paper != pytest.approx(corrected, rel=1e-6)
        assert paper > corrected  # cross terms are net negative here

    def test_stddev_grows_with_traffic_ratio(self):
        """The quantitative core of Figs. 4/5: at a fixed m (baseline
        setting), relative noise explodes with n_y; with scaled m_y
        (VLM setting) it grows far more slowly."""
        fixed = [
            estimator_stddev(10_000, 10_000 * r, 1_000, 65_536, 65_536, 2)
            for r in (1, 10, 50)
        ]
        scaled = [
            estimator_stddev(
                10_000, 10_000 * r, 1_000, 65_536, 65_536 * r, 2
            )
            for r in (1, 10, 50)
        ]
        assert fixed[0] < fixed[1] < fixed[2]
        assert fixed[2] > 5 * scaled[2]

    def test_stddev_requires_positive_nc(self):
        with pytest.raises(ConfigurationError):
            estimator_stddev(100, 100, 0, 256, 256, 2)


class TestAgainstMonteCarlo:
    @pytest.mark.parametrize(
        "n_x,n_y,n_c,m_x,m_y",
        [
            (2_000, 2_000, 600, 8_192, 8_192),
            (2_000, 8_000, 600, 8_192, 32_768),
        ],
    )
    def test_stddev_matches_simulation(self, n_x, n_y, n_c, m_x, m_y):
        closed = estimator_stddev(n_x, n_y, n_c, m_x, m_y, 2)
        mc = simulate_accuracy(
            n_x, n_y, n_c, m_x, m_y, 2, repetitions=60, seed=17
        )
        # Sample stddev of stddev ~ closed/sqrt(2*59) ~ 9%; allow 35%.
        assert mc.stddev == pytest.approx(closed, rel=0.35)

    def test_bias_within_noise(self):
        closed = relative_bias(2_000, 8_000, 600, 8_192, 32_768, 2, exact=True)
        mc = simulate_accuracy(
            2_000, 8_000, 600, 8_192, 32_768, 2, repetitions=60, seed=23
        )
        noise = mc.stddev / (60**0.5)
        assert abs(mc.bias - closed) < 5 * noise

    def test_montecarlo_result_fields(self):
        mc = simulate_accuracy(500, 500, 100, 2_048, 2_048, 2, repetitions=10, seed=3)
        assert mc.estimates.shape == (10,)
        assert mc.repetitions == 10
        assert mc.mean_abs_error >= 0

    def test_montecarlo_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_accuracy(100, 100, 0, 256, 256, 2)
        with pytest.raises(ConfigurationError):
            simulate_accuracy(100, 100, 10, 512, 256, 2)

"""Unit tests for the array sizing rule (Section IV-B)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.sizing import LoadFactorSizing, array_size_for_volume
from repro.errors import ConfigurationError
from repro.utils.validation import is_power_of_two


class TestArraySizeForVolume:
    def test_paper_rule(self):
        # m_x = 2^ceil(log2(n * f))
        assert array_size_for_volume(10_000, 3.0) == 32_768
        assert array_size_for_volume(451_000, 3.0) == 2_097_152

    def test_minimum_two(self):
        assert array_size_for_volume(0.1, 0.5) == 2

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ConfigurationError):
            array_size_for_volume(bad, 3.0)
        with pytest.raises(ConfigurationError):
            array_size_for_volume(100, bad)

    @given(
        st.floats(min_value=1.0, max_value=1e7),
        st.floats(min_value=0.01, max_value=64.0),
    )
    def test_always_power_of_two_and_sufficient(self, volume, factor):
        m = array_size_for_volume(volume, factor)
        assert is_power_of_two(m)
        assert m >= min(volume * factor, 2) or m == 2
        # never more than twice the target (power-of-two rounding band)
        assert m < 2 * max(volume * factor, 2) + 1


class TestLoadFactorSizing:
    def test_size_for(self):
        sizing = LoadFactorSizing(3.0)
        assert sizing.size_for(10_000) == 32_768

    def test_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            LoadFactorSizing(0.0)

    @given(st.floats(min_value=10.0, max_value=1e6))
    def test_effective_load_factor_band(self, volume):
        sizing = LoadFactorSizing(3.0)
        effective = sizing.effective_load_factor(volume)
        assert 3.0 - 1e-9 <= effective < 6.0 + 1e-9

    def test_frozen(self):
        sizing = LoadFactorSizing(3.0)
        with pytest.raises(Exception):
            sizing.load_factor = 4.0

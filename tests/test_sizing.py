"""Unit tests for the array sizing rules (Section IV-B).

Covers the paper's power-of-two rule, the unified
:class:`~repro.core.sizing.SizingPolicy` implementations
(``StaticSizing`` / ``PrivacyOptimalSizing`` / ``AdaptiveSizing``),
and the deprecated shims.  The Hypothesis properties required by the
SizingPolicy contract — monotonicity in volume, power-of-two
snapping, the hysteresis band being honored — live in
``tests/test_sizing_policy.py``.
"""

import pytest

from hypothesis import given, strategies as st

from repro.core.sizing import (
    MIN_ARRAY_SIZE,
    AdaptiveSizing,
    PrivacyOptimalSizing,
    SizingPolicy,
    StaticSizing,
    array_size_for_volume,
)
from repro.errors import ConfigurationError, ValidationError
from repro.utils.validation import is_power_of_two


class TestArraySizeForVolume:
    def test_paper_rule(self):
        # m_x = 2^ceil(log2(n * f))
        assert array_size_for_volume(10_000, 3.0) == 32_768
        assert array_size_for_volume(451_000, 3.0) == 2_097_152

    def test_minimum_two(self):
        assert array_size_for_volume(0.1, 0.5) == 2

    def test_zero_volume_returns_minimum(self):
        # A dark RSU (zero observed volume) gets the documented
        # minimum size, not an error — adaptive re-sizing relies on
        # this surviving idle periods.
        assert array_size_for_volume(0, 3.0) == MIN_ARRAY_SIZE
        assert array_size_for_volume(0.0, 0.25) == MIN_ARRAY_SIZE

    @pytest.mark.parametrize("bad", [-1, -0.5, float("nan"), float("inf")])
    def test_rejects_bad_volume(self, bad):
        with pytest.raises(ValidationError):
            array_size_for_volume(bad, 3.0)

    @pytest.mark.parametrize("bad", [0, -1, -3.0, float("nan"), float("inf")])
    def test_rejects_bad_load_factor(self, bad):
        with pytest.raises(ValidationError):
            array_size_for_volume(100, bad)

    def test_validation_error_is_configuration_compatible(self):
        # ValidationError subclasses ReproError; callers catching the
        # broad library error keep working.
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            array_size_for_volume(100, 0)

    @given(
        st.floats(min_value=1.0, max_value=1e7),
        st.floats(min_value=0.01, max_value=64.0),
    )
    def test_always_power_of_two_and_sufficient(self, volume, factor):
        m = array_size_for_volume(volume, factor)
        assert is_power_of_two(m)
        assert m >= min(volume * factor, 2) or m == 2
        # never more than twice the target (power-of-two rounding band)
        assert m < 2 * max(volume * factor, 2) + 1


class TestStaticSizing:
    def test_size_for(self):
        sizing = StaticSizing(3.0)
        assert sizing.size_for(10_000) == 32_768

    def test_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            StaticSizing(0.0)

    @given(st.floats(min_value=10.0, max_value=1e6))
    def test_effective_load_factor_band(self, volume):
        sizing = StaticSizing(3.0)
        effective = sizing.effective_load_factor(volume)
        assert 3.0 - 1e-9 <= effective < 6.0 + 1e-9

    def test_frozen(self):
        sizing = StaticSizing(3.0)
        with pytest.raises(Exception):
            sizing.load_factor = 4.0

    def test_implements_protocol(self):
        assert isinstance(StaticSizing(3.0), SizingPolicy)


class TestPrivacyOptimalSizing:
    def test_targets_the_optimizer_argmax(self):
        from repro.privacy.optimizer import optimal_load_factor

        sizing = PrivacyOptimalSizing(s=2)
        f_star, p_star = optimal_load_factor(2)
        assert sizing.load_factor == pytest.approx(f_star)
        assert sizing.optimal_privacy == pytest.approx(p_star)
        assert is_power_of_two(sizing.size_for(10_000))

    def test_deterministic(self):
        a, b = PrivacyOptimalSizing(s=2), PrivacyOptimalSizing(s=2)
        assert a.load_factor == b.load_factor
        assert a.size_for(12_345) == b.size_for(12_345)

    def test_implements_protocol(self):
        assert isinstance(PrivacyOptimalSizing(s=2), SizingPolicy)


class TestAdaptiveSizing:
    def policy(self, **kwargs):
        defaults = dict(target=StaticSizing(3.0), hysteresis=1, max_step=1)
        defaults.update(kwargs)
        return AdaptiveSizing(**defaults)

    def test_implements_protocol(self):
        assert isinstance(self.policy(), SizingPolicy)

    def test_hold_within_band(self):
        policy = self.policy()
        # target for 10_000 @ f=3 is 32_768; one octave away holds.
        assert policy.propose(32_768, 10_000) == 32_768
        assert policy.propose(16_384, 10_000) == 16_384
        assert policy.propose(65_536, 10_000) == 65_536

    def test_moves_one_octave_toward_target(self):
        policy = self.policy()
        assert policy.propose(4_096, 10_000) == 8_192
        assert policy.propose(262_144, 10_000) == 131_072

    def test_rate_limit_respected(self):
        policy = self.policy(max_step=3)
        assert policy.propose(2, 10_000) == 16

    def test_clamps(self):
        policy = self.policy(max_size=8_192)
        assert policy.propose(8_192, 1_000_000) == 8_192
        policy = self.policy(min_size=64)
        assert policy.propose(64, 0) == 64

    def test_zero_volume_shrinks_toward_min(self):
        policy = self.policy()
        assert policy.propose(1_024, 0) == 512

    def test_rejects_non_power_of_two_current(self):
        with pytest.raises(ValidationError):
            self.policy().propose(48, 10_000)

    def test_guard_validation(self):
        with pytest.raises(ConfigurationError):
            self.policy(hysteresis=-1)
        with pytest.raises(ConfigurationError):
            self.policy(max_step=0)
        with pytest.raises(ConfigurationError):
            self.policy(min_size=3)
        with pytest.raises(ConfigurationError):
            self.policy(max_size=24)
        with pytest.raises(ConfigurationError):
            self.policy(min_size=64, max_size=32)


class TestDeprecatedShims:
    def test_load_factor_sizing_warns(self):
        from repro.core.sizing import LoadFactorSizing

        with pytest.deprecated_call():
            sizing = LoadFactorSizing(3.0)
        assert isinstance(sizing, StaticSizing)
        assert sizing.size_for(10_000) == 32_768

    def test_baseline_sizing_module_warns(self):
        import repro.baseline.sizing as shim

        with pytest.deprecated_call():
            func = shim.fixed_array_size_for_privacy
        from repro.core.sizing import fixed_array_size_for_privacy

        assert func is fixed_array_size_for_privacy

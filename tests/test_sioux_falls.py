"""Tests for the Sioux Falls network data (paper Fig. 3)."""


from repro.roadnet.sioux_falls import (
    NUM_NODES,
    SIOUX_FALLS_STREETS,
    sioux_falls_network,
)


class TestTopology:
    def test_paper_dimensions(self):
        """Paper: 'the Sioux Falls network contains 24 nodes (RSUs)
        with 76 arcs (road segments)'."""
        network = sioux_falls_network()
        assert network.num_nodes == 24
        assert network.num_arcs == 76

    def test_street_list_consistent(self):
        assert len(SIOUX_FALLS_STREETS) == 38  # 38 two-way streets
        assert NUM_NODES == 24
        nodes = {a for a, _, _ in SIOUX_FALLS_STREETS} | {
            b for _, b, _ in SIOUX_FALLS_STREETS
        }
        assert nodes == set(range(1, 25))

    def test_no_duplicate_streets(self):
        keys = {(min(a, b), max(a, b)) for a, b, _ in SIOUX_FALLS_STREETS}
        assert len(keys) == 38

    def test_strongly_connected(self):
        assert sioux_falls_network().is_strongly_connected()

    def test_symmetric_times(self):
        network = sioux_falls_network()
        for a, b, t in SIOUX_FALLS_STREETS:
            assert network.graph.edges[a, b]["free_flow_time"] == t
            assert network.graph.edges[b, a]["free_flow_time"] == t

    def test_custom_capacity(self):
        network = sioux_falls_network(capacity=999.0)
        assert all(arc.capacity == 999.0 for arc in network.arcs())

    def test_known_shortest_path(self):
        # 9 -> 10 are adjacent; shortest path is the direct arc.
        network = sioux_falls_network()
        assert network.shortest_path(9, 10) == [9, 10]

    def test_degree_bounds(self):
        """Every intersection connects 2-5 streets in the classic
        network."""
        network = sioux_falls_network()
        for node in network.nodes:
            degree = len(network.successors(node))
            assert 2 <= degree <= 5

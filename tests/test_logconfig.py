"""Tests for logging configuration."""

import io
import logging

from repro.utils.logconfig import configure_logging, get_logger


class TestGetLogger:
    def test_namespaced(self):
        assert get_logger("vcps.server").name == "repro.vcps.server"

    def test_already_namespaced(self):
        assert get_logger("repro.core").name == "repro.core"

    def test_silent_by_default(self):
        root = logging.getLogger("repro")
        assert any(
            isinstance(h, logging.NullHandler) for h in root.handlers
        )


class TestConfigureLogging:
    def test_verbose_level(self):
        stream = io.StringIO()
        root = configure_logging(verbose=True, stream=stream)
        assert root.level == logging.DEBUG
        get_logger("test").debug("hello-debug")
        assert "hello-debug" in stream.getvalue()

    def test_reconfiguration_replaces_handler(self):
        first = io.StringIO()
        second = io.StringIO()
        configure_logging(stream=first)
        configure_logging(stream=second)
        get_logger("test").info("only-once")
        assert "only-once" not in first.getvalue()
        assert second.getvalue().count("only-once") == 1

    def test_anomaly_warning_is_logged(self):
        """The server's integrity flag reaches the log stream."""
        from repro.core.encoder import encode_passes
        from repro.core.parameters import SchemeParameters
        from repro.core.reports import RsuReport
        from repro.core.sizing import StaticSizing
        from repro.traffic.population import VehicleFleet
        from repro.vcps.history import VolumeHistory
        from repro.vcps.server import CentralServer

        stream = io.StringIO()
        configure_logging(stream=stream)
        params = SchemeParameters(s=2, load_factor=4.0, m_o=4_096, hash_seed=1)
        fleet = VehicleFleet.random(500, seed=1)
        honest = encode_passes(fleet.ids, fleet.keys, 1, 4_096, params)
        tampered = RsuReport(rsu_id=1, counter=5_000, bits=honest.bits)
        server = CentralServer(
            2, StaticSizing(4.0), history=VolumeHistory({1: 500})
        )
        server.receive_report(tampered)
        assert "integrity anomaly" in stream.getvalue()
        # restore silence for other tests
        configure_logging(stream=io.StringIO())

"""Tests for the central decoder pipeline."""

import pytest

from repro.core.decoder import CentralDecoder
from repro.core.encoder import encode_passes
from repro.core.parameters import SchemeParameters
from repro.errors import EstimationError
from repro.traffic.population import VehicleFleet


@pytest.fixture
def loaded_decoder():
    """Decoder with three RSUs' reports from overlapping populations."""
    params = SchemeParameters(s=2, load_factor=1.0, m_o=1 << 12, hash_seed=8)
    fleet = VehicleFleet.random(3_000, seed=1)
    decoder = CentralDecoder(2)
    # RSU 1 sees vehicles [0, 1500); RSU 2 sees [500, 2500);
    # RSU 3 sees [1000, 3000).
    spans = {1: (0, 1500), 2: (500, 2500), 3: (1000, 3000)}
    for rsu_id, (lo, hi) in spans.items():
        report = encode_passes(
            fleet.ids[lo:hi], fleet.keys[lo:hi], rsu_id, 1 << 12, params
        )
        decoder.submit(report)
    return decoder, spans


class TestIngestion:
    def test_rsu_ids_sorted(self, loaded_decoder):
        decoder, _ = loaded_decoder
        assert decoder.rsu_ids() == [1, 2, 3]

    def test_missing_report(self, loaded_decoder):
        decoder, _ = loaded_decoder
        with pytest.raises(EstimationError, match="no report"):
            decoder.report_for(99)
        with pytest.raises(EstimationError):
            decoder.report_for(1, period=5)

    def test_latest_report_wins(self, loaded_decoder):
        decoder, _ = loaded_decoder
        original = decoder.report_for(1)
        replacement = type(original)(
            rsu_id=1, counter=7, bits=original.bits.copy(), period=0
        )
        decoder.submit(replacement)
        assert decoder.point_volume(1) == 7

    def test_len(self, loaded_decoder):
        decoder, _ = loaded_decoder
        assert len(decoder) == 3


class TestQueries:
    def test_point_volume(self, loaded_decoder):
        decoder, spans = loaded_decoder
        for rsu_id, (lo, hi) in spans.items():
            assert decoder.point_volume(rsu_id) == hi - lo

    def test_pair_estimate_accuracy(self, loaded_decoder):
        decoder, _ = loaded_decoder
        # True overlaps: (1,2) -> 1000, (2,3) -> 1500, (1,3) -> 500.
        for pair, truth in {(1, 2): 1000, (2, 3): 1500, (1, 3): 500}.items():
            estimate = decoder.pair_estimate(*pair)
            assert estimate.error_ratio(truth) < 0.35

    def test_same_rsu_rejected(self, loaded_decoder):
        decoder, _ = loaded_decoder
        with pytest.raises(EstimationError, match="distinct"):
            decoder.pair_estimate(1, 1)

    def test_all_pairs(self, loaded_decoder):
        decoder, _ = loaded_decoder
        matrix = decoder.all_pairs()
        assert set(matrix) == {(1, 2), (1, 3), (2, 3)}

    def test_all_pairs_subset(self, loaded_decoder):
        decoder, _ = loaded_decoder
        matrix = decoder.all_pairs(rsu_ids=[1, 3])
        assert set(matrix) == {(1, 3)}

"""Tests for the controlled (n_x, n_y, n_c) workload generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.traffic.random_workload import make_pair_population


class TestMakePairPopulation:
    def test_exact_cardinalities(self):
        pop = make_pair_population(100, 300, 40, seed=1)
        assert (pop.n_x, pop.n_y, pop.n_c) == (100, 300, 40)

    def test_overlap_is_exact(self):
        pop = make_pair_population(100, 300, 40, seed=1)
        ids_x, _ = pop.passes_at_x()
        ids_y, _ = pop.passes_at_y()
        assert np.intersect1d(ids_x, ids_y).size == 40

    def test_invalid_nc(self):
        with pytest.raises(ConfigurationError):
            make_pair_population(10, 20, 11)
        with pytest.raises(ConfigurationError):
            make_pair_population(10, 20, -1)

    def test_zero_common(self):
        pop = make_pair_population(10, 20, 0, seed=2)
        ids_x, _ = pop.passes_at_x()
        ids_y, _ = pop.passes_at_y()
        assert np.intersect1d(ids_x, ids_y).size == 0

    def test_full_overlap(self):
        pop = make_pair_population(10, 20, 10, seed=3)
        assert pop.n_c == 10
        assert pop.n_x == 10

    def test_custom_rsu_ids(self):
        pop = make_pair_population(10, 20, 5, rsu_x=7, rsu_y=9, seed=4)
        assert set(pop.passes()) == {7, 9}

    @given(
        st.integers(min_value=1, max_value=400),
        st.integers(min_value=1, max_value=400),
        st.data(),
    )
    @settings(max_examples=30)
    def test_cardinalities_property(self, n_x, n_y, data):
        n_c = data.draw(st.integers(min_value=0, max_value=min(n_x, n_y)))
        pop = make_pair_population(n_x, n_y, n_c, seed=0)
        assert pop.n_x == n_x and pop.n_y == n_y and pop.n_c == n_c
        total = len(pop.common) + len(pop.only_x) + len(pop.only_y)
        assert total == n_x + n_y - n_c

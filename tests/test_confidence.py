"""Tests for plug-in confidence intervals."""

import pytest

from repro.accuracy.confidence import confidence_interval
from repro.accuracy.montecarlo import simulate_accuracy
from repro.core.encoder import encode_passes
from repro.core.estimator import estimate_intersection
from repro.core.parameters import SchemeParameters
from repro.errors import ConfigurationError
from repro.traffic.random_workload import make_pair_population


def make_estimate(n_x=2_000, n_y=8_000, n_c=500, m_x=8_192, m_y=32_768, seed=1):
    params = SchemeParameters(s=2, load_factor=1.0, m_o=m_y, hash_seed=seed)
    pop = make_pair_population(n_x, n_y, n_c, seed=seed)
    rx = encode_passes(*pop.passes_at_x(), 1, m_x, params)
    ry = encode_passes(*pop.passes_at_y(), 2, m_y, params)
    return estimate_intersection(rx, ry, 2)


class TestConfidenceInterval:
    def test_basic_shape(self):
        interval = confidence_interval(make_estimate())
        assert interval.low <= interval.estimate <= interval.high
        assert interval.width > 0
        assert interval.low >= 0.0

    def test_level_controls_width(self):
        estimate = make_estimate()
        narrow = confidence_interval(estimate, level=0.80)
        wide = confidence_interval(estimate, level=0.99)
        assert wide.width > narrow.width

    def test_invalid_level(self):
        with pytest.raises(ConfigurationError):
            confidence_interval(make_estimate(), level=0.5)

    def test_str_rendering(self):
        text = str(confidence_interval(make_estimate()))
        assert "@ 95%" in text

    def test_contains(self):
        interval = confidence_interval(make_estimate())
        assert interval.contains(interval.estimate)
        assert not interval.contains(interval.high + 1)

    def test_coverage_close_to_nominal(self):
        """Over repeated simulations, the 95% interval should cover
        the truth most of the time (allow slack for plug-in error)."""
        n_x, n_y, n_c, m_x, m_y = 2_000, 8_000, 500, 8_192, 32_768
        covered = 0
        runs = 40
        for seed in range(runs):
            estimate = make_estimate(n_x, n_y, n_c, m_x, m_y, seed=seed)
            if confidence_interval(estimate).contains(n_c):
                covered += 1
        assert covered >= int(0.85 * runs)

    def test_stddev_matches_montecarlo_scale(self):
        """The interval's stddev is the closed-form one, which matches
        empirical spread."""
        estimate = make_estimate()
        interval = confidence_interval(estimate)
        mc = simulate_accuracy(
            2_000, 8_000, 500, 8_192, 32_768, 2, repetitions=40, seed=5
        )
        empirical_std = mc.stddev * 500
        assert interval.stddev == pytest.approx(empirical_std, rel=0.5)

"""Validation of the exact occupancy second moments against simulation.

These are the covariances the paper's Eq. (35) sketches; the closed
forms in repro.accuracy.occupancy must match brute-force Monte-Carlo
of the actual encoding process.
"""

import numpy as np
import pytest

from repro.accuracy.occupancy import exact_pair_moments
from repro.core.encoder import encode_passes
from repro.core.parameters import SchemeParameters
from repro.core.unfolding import unfolded_or
from repro.errors import ConfigurationError
from repro.traffic.random_workload import make_pair_population


def _sample_fractions(n_x, n_y, n_c, m_x, m_y, s, runs, seed):
    rng = np.random.default_rng(seed)
    v = np.empty((runs, 3))
    for i in range(runs):
        params = SchemeParameters(
            s=s, load_factor=1.0, m_o=m_y, hash_seed=int(rng.integers(2**63))
        )
        pop = make_pair_population(n_x, n_y, n_c, seed=rng)
        rx = encode_passes(*pop.passes_at_x(), 1, m_x, params)
        ry = encode_passes(*pop.passes_at_y(), 2, m_y, params)
        joint = unfolded_or(rx.bits, ry.bits)
        v[i] = (
            rx.bits.zero_fraction(),
            ry.bits.zero_fraction(),
            joint.zero_fraction(),
        )
    return v


@pytest.fixture(scope="module")
def sampled():
    """600 encode rounds of a moderately sized unequal pair."""
    config = dict(n_x=400, n_y=1600, n_c=120, m_x=512, m_y=2048, s=2)
    v = _sample_fractions(runs=600, seed=11, **config)
    return config, v


class TestExactPairMoments:
    def test_means_match(self, sampled):
        config, v = sampled
        mom = exact_pair_moments(**config)
        assert v[:, 0].mean() == pytest.approx(mom.mean_v_x, abs=4 * v[:, 0].std() / 24)
        assert v[:, 1].mean() == pytest.approx(mom.mean_v_y, abs=4 * v[:, 1].std() / 24)
        assert v[:, 2].mean() == pytest.approx(mom.mean_v_c, abs=4 * v[:, 2].std() / 24)

    def test_variances_match(self, sampled):
        config, v = sampled
        mom = exact_pair_moments(**config)
        # Sample variance of a variance estimate: rel tolerance ~25%
        # at 600 runs (generous 4-sigma-ish bounds).
        assert v[:, 0].var() == pytest.approx(mom.var_v_x, rel=0.25)
        assert v[:, 1].var() == pytest.approx(mom.var_v_y, rel=0.25)
        assert v[:, 2].var() == pytest.approx(mom.var_v_c, rel=0.25)

    def test_covariances_match(self, sampled):
        config, v = sampled
        mom = exact_pair_moments(**config)
        sample_cov = np.cov(v.T)
        scale = np.sqrt(mom.var_v_x * mom.var_v_c)
        assert abs(sample_cov[0, 2] - mom.cov_cx) < 0.25 * scale
        scale = np.sqrt(mom.var_v_y * mom.var_v_c)
        assert abs(sample_cov[1, 2] - mom.cov_cy) < 0.25 * scale
        scale = np.sqrt(mom.var_v_x * mom.var_v_y)
        assert abs(sample_cov[0, 1] - mom.cov_xy) < 0.25 * scale

    def test_binomial_variance_upper_bounds_exact(self, sampled):
        """The paper's binomial Var (Eq. 19) ignores the negative
        inter-bit occupancy correlation, so it upper-bounds the exact
        variance — loosely at high load, tightly for sparse arrays."""
        config, _ = sampled
        mom = exact_pair_moments(**config)
        q = mom.mean_v_x
        binom = q * (1 - q) / config["m_x"]
        assert mom.var_v_x <= binom * 1.0001

    def test_single_array_variance_is_classic_occupancy(self):
        """Var(U) for one array must equal the textbook occupancy
        formula m*q + m(m-1)(1-2/m)^n - (m*q)^2."""
        n, m = 400, 512
        mom = exact_pair_moments(n, 1_000, 0, m, 2_048, 2)
        q = (1 - 1 / m) ** n
        var_u = m * q + m * (m - 1) * (1 - 2 / m) ** n - (m * q) ** 2
        assert mom.var_v_x == pytest.approx(var_u / m**2, rel=1e-9)

    def test_cauchy_schwarz(self):
        mom = exact_pair_moments(1_000, 5_000, 300, 4_096, 16_384, 2)
        assert abs(mom.cov_cx) <= np.sqrt(mom.var_v_c * mom.var_v_x) + 1e-18
        assert abs(mom.cov_cy) <= np.sqrt(mom.var_v_c * mom.var_v_y) + 1e-18
        assert abs(mom.cov_xy) <= np.sqrt(mom.var_v_x * mom.var_v_y) + 1e-18
        assert -1.0 <= mom.correlation_cx() <= 1.0

    def test_positive_correlations_with_joint_array(self):
        """B_c zeros imply B_x/B_y zeros, so both cross covariances are
        positive."""
        mom = exact_pair_moments(1_000, 5_000, 300, 4_096, 16_384, 2)
        assert mom.cov_cx > 0
        assert mom.cov_cy > 0

    def test_input_validation(self):
        with pytest.raises(ConfigurationError):
            exact_pair_moments(10, 10, 5, 256, 128, 2)  # m_x > m_y
        with pytest.raises(ConfigurationError):
            exact_pair_moments(10, 10, 50, 128, 256, 2)  # n_c too big
        with pytest.raises(ConfigurationError):
            exact_pair_moments(10, 10, 5, 128, 256, 0)  # bad s

    def test_equal_sizes_supported(self):
        mom = exact_pair_moments(500, 700, 100, 1_024, 1_024, 2)
        assert mom.var_v_c > 0

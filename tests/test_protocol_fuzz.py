"""Protocol fuzzing: randomized message sequences against the agents,
and corpus-driven hardening of the binary wire codec.

Hypothesis drives random interleavings of valid, replayed, malformed
and impostor messages at a vehicle and an RSU, checking the agents'
invariants hold regardless of ordering:

* RSU counter == number of *accepted* responses, always;
* set bits <= accepted responses;
* a vehicle answers each RSU at most once per period, whatever the
  query order;
* rejected responses never mutate measurement state.

The wire-level corpora (truncated frames, bit-flipped headers,
oversized length prefixes) pin down the codec's failure contract:
malformed input raises a :mod:`repro.errors` type — never a raw
``struct.error``, never an unbounded read.
"""

import asyncio
import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import engine
from repro.core.bitarray import BitArray
from repro.core.parameters import SchemeParameters
from repro.core.reports import RsuReport
from repro.errors import (
    AuthenticationError,
    ProtocolError,
    ValidationError,
    WireError,
)
from repro.service import wire
from repro.vcps.ids import random_mac, random_macs
from repro.vcps.messages import Query, Response
from repro.vcps.pki import CertificateAuthority
from repro.vcps.rsu import RoadsideUnit
from repro.vcps.vehicle import Vehicle

ARRAY_SIZE = 64


def build_world(seed):
    ca = CertificateAuthority(seed=1)
    params = SchemeParameters(s=2, load_factor=2.0, m_o=1 << 10, hash_seed=seed)
    rsu = RoadsideUnit(1, ARRAY_SIZE, ca.issue(1))
    vehicle = Vehicle(
        7, 1234, params, trust_anchor=ca.trust_anchor(), seed=seed
    )
    return ca, rsu, vehicle


# One fuzz "event": what arrives next at the RSU.
events = st.lists(
    st.sampled_from(
        ["valid", "replay_bit", "oob_index", "vendor_mac", "negative_index"]
    ),
    min_size=1,
    max_size=40,
)


class TestRsuFuzz:
    @given(events, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_counter_tracks_accepted_responses_exactly(self, sequence, seed):
        _, rsu, _ = build_world(seed)
        rng = np.random.default_rng(seed)
        accepted = 0
        for event in sequence:
            if event == "valid":
                response = Response(
                    mac=random_mac(rng), bit_index=int(rng.integers(ARRAY_SIZE))
                )
            elif event == "replay_bit":
                response = Response(mac=random_mac(rng), bit_index=0)
            elif event == "oob_index":
                response = Response(mac=random_mac(rng), bit_index=ARRAY_SIZE)
            elif event == "negative_index":
                response = Response(mac=random_mac(rng), bit_index=-1)
            else:  # vendor_mac
                response = Response(mac=0x001A2B3C4D5E, bit_index=1)
            try:
                rsu.handle_response(response)
                accepted += 1
            except ProtocolError:
                pass
        assert rsu.counter == accepted
        report = rsu.end_period()
        assert report.bits.count_ones() <= max(accepted, 0)
        assert report.counter == accepted


class TestVehicleFuzz:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=4),  # rsu id
                st.sampled_from(["good", "rogue", "expired"]),
            ),
            min_size=1,
            max_size=30,
        ),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_at_most_one_answer_per_rsu_per_period(self, sequence, seed):
        ca, _, vehicle = build_world(seed)
        rogue = CertificateAuthority("rogue", seed=2)
        answered = set()
        for rsu_id, kind in sequence:
            if kind == "good":
                cert = ca.issue(rsu_id)
            elif kind == "expired":
                cert = ca.issue(rsu_id, not_after=-1)
            else:
                cert = rogue.issue(rsu_id)
            query = Query(rsu_id=rsu_id, certificate=cert, array_size=ARRAY_SIZE)
            try:
                response = vehicle.handle_query(query)
            except AuthenticationError:
                continue
            if response is not None:
                assert rsu_id not in answered, "double answer within a period"
                answered.add(rsu_id)
                response.validate_for(ARRAY_SIZE)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_period_reset_allows_reanswer_deterministically(self, seed):
        ca, _, vehicle = build_world(seed)
        query = Query(rsu_id=1, certificate=ca.issue(1), array_size=ARRAY_SIZE)
        first = vehicle.handle_query(query)
        vehicle.start_period()
        second = vehicle.handle_query(query)
        assert first is not None and second is not None
        # Same deterministic index both periods (the derivation has no
        # period input), fresh MAC each time.
        assert first.bit_index == second.bit_index
        assert first.mac != second.mac


# ----------------------------------------------------------------------
# Wire codec corpora
# ----------------------------------------------------------------------
def _report():
    return RsuReport(
        rsu_id=4, counter=3, bits=BitArray.from_indices(64, [1, 9, 40])
    )


def _corpus():
    """One valid encoded frame of every message type."""
    rng = np.random.default_rng(3)
    messages = [
        wire.ResponseMsg(rsu_id=1, mac=random_mac(rng), bit_index=5),
        wire.ResponseBatch(
            rsu_id=2,
            macs=np.array([random_mac(rng) for _ in range(3)], np.uint64),
            bit_indices=np.array([0, 7, 63], dtype=np.uint32),
            seq=9,
        ),
        wire.BatchAck(seq=9, duplicate=True),
        wire.EndPeriod(period=0),
        wire.EndPeriodAck(period=0, snapshots=24),
        wire.Snapshot.from_report(_report(), seq=5),
        wire.SnapshotAck(rsu_id=4, period=0, seq=5),
        wire.VolumeQuery(rsu_x=1, rsu_y=2, period=0),
        wire.PointQuery(rsu_id=1, period=0),
        wire.PointVolume(rsu_id=1, period=0, counter=12),
        wire.EstimateMsg(
            n_c_hat=10.5,
            v_c=0.25,
            v_x=0.5,
            v_y=0.5,
            m_x=64,
            m_y=128,
            n_x=10,
            n_y=20,
            s=2,
        ),
        wire.ErrorMsg(wire.E_MALFORMED, "fuzz"),
    ]
    return [wire.encode_frame(m) for m in messages]


CORPUS = _corpus()


def _read_from_bytes(data):
    """Run read_message against a closed stream holding *data*."""

    async def body():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await wire.read_message(reader)

    return asyncio.run(body())


class TestTruncatedFrames:
    @pytest.mark.parametrize("frame", CORPUS, ids=lambda f: f"len{len(f)}")
    def test_every_truncation_raises_wire_error(self, frame):
        """decode_frame on any strict prefix is a WireError — never a
        struct.error, never a partial parse."""
        for cut in range(len(frame)):
            with pytest.raises(WireError):
                wire.decode_frame(frame[:cut])

    @pytest.mark.parametrize("frame", CORPUS, ids=lambda f: f"len{len(f)}")
    def test_stream_truncation_is_wire_error_not_clean_eof(self, frame):
        """A stream that dies mid-frame is truncation (WireError);
        only EOF on a frame boundary is a clean close."""
        with pytest.raises(asyncio.IncompleteReadError):
            _read_from_bytes(b"")  # clean close between frames
        for cut in (1, len(frame) // 2, len(frame) - 1):
            with pytest.raises(WireError):
                _read_from_bytes(frame[:cut])

    def test_trailing_garbage_after_valid_frame_is_detected(self):
        frame = CORPUS[0]
        message, consumed = wire.decode_frame(frame + b"\xff" * 7)
        assert consumed == len(frame)
        with pytest.raises(WireError):
            wire.decode_frame((frame + b"\xff" * 7)[consumed:])


class TestBitFlippedFrames:
    @pytest.mark.parametrize("frame", CORPUS, ids=lambda f: f"len{len(f)}")
    def test_header_bit_flips_never_escape_the_error_type(self, frame):
        """Flip every bit of the 12-byte header: each one either is
        detected (WireError) or still yields a well-formed Message —
        struct.error and friends must never escape."""
        header_size = 12
        detected = 0
        for byte in range(header_size):
            for bit in range(8):
                flipped = bytearray(frame)
                flipped[byte] ^= 1 << bit
                try:
                    message, consumed = wire.decode_frame(bytes(flipped))
                except WireError:
                    detected += 1
                else:
                    assert consumed <= len(flipped)
                    assert isinstance(message, wire.Message.__args__)
        # Magic, version, length, and CRC cover most of the header, so
        # the overwhelming majority of flips must be caught.
        assert detected >= 7 * header_size

    @pytest.mark.parametrize("frame", CORPUS, ids=lambda f: f"len{len(f)}")
    def test_payload_bit_flips_are_always_caught_by_crc(self, frame):
        header_size = 12
        for offset in range(header_size, len(frame)):
            flipped = bytearray(frame)
            flipped[offset] ^= 0x10
            with pytest.raises(WireError, match="CRC"):
                wire.decode_frame(bytes(flipped))


class TestOversizedLengthPrefix:
    @staticmethod
    def _header(length, msg_type=0x01):
        return struct.pack(
            ">2sBBII", wire.MAGIC, wire.VERSION, msg_type, length, 0
        )

    @pytest.mark.parametrize(
        "length", [wire.MAX_PAYLOAD + 1, 1 << 31, (1 << 32) - 1]
    )
    def test_decode_frame_rejects_oversized_declaration(self, length):
        with pytest.raises(WireError, match="MAX_PAYLOAD"):
            wire.decode_frame(self._header(length))

    @pytest.mark.parametrize(
        "length", [wire.MAX_PAYLOAD + 1, 1 << 31, (1 << 32) - 1]
    )
    def test_read_message_rejects_before_reading_the_body(self, length):
        """The length check happens on the header alone — a hostile
        4 GiB declaration raises instead of waiting for bytes that
        will never come (the hang the issue forbids)."""
        with pytest.raises(WireError, match="MAX_PAYLOAD"):
            _read_from_bytes(self._header(length))

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    @settings(max_examples=60, deadline=None)
    def test_any_declared_length_with_no_body_is_a_wire_error(self, length):
        with pytest.raises(WireError):
            _read_from_bytes(self._header(length) + b"xx")


class TestRandomGarbage:
    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=120, deadline=None)
    def test_decode_frame_never_leaks_struct_error(self, blob):
        try:
            message, consumed = wire.decode_frame(blob)
        except WireError:
            return
        assert consumed <= len(blob)
        assert isinstance(message, wire.Message.__args__)


# ----------------------------------------------------------------------
# Padding contract: from_bytes / or_bytes / zero-copy ingest, fuzzed
# across every registered kernel backend
# ----------------------------------------------------------------------
@st.composite
def sized_payloads(draw):
    """A bit-array size and a payload of exactly the right length
    (whose padding bits may or may not be dirty)."""
    size = draw(st.integers(min_value=1, max_value=256))
    nbytes = (size + 7) // 8
    data = draw(st.binary(min_size=nbytes, max_size=nbytes))
    return size, data


def _padding_dirty(size, data):
    tail = size % 8
    return bool(tail and data[-1] & ((1 << (8 - tail)) - 1))


class TestPaddingRejectionFuzz:
    """Deserialization must reject payloads whose padding bits past
    ``size`` are set — on every registered backend, because an accepted
    dirty pad would skew the zero-bit statistics differently per
    backend and break bit-identity."""

    @pytest.mark.parametrize("backend", engine.available_backends())
    @given(sized_payloads())
    @settings(max_examples=60, deadline=None)
    def test_from_bytes_contract_on_every_backend(self, backend, payload):
        size, data = payload
        if _padding_dirty(size, data):
            with pytest.raises(ValidationError):
                BitArray.from_bytes(data, size, backend=backend)
        else:
            array = BitArray.from_bytes(data, size, backend=backend)
            assert array.to_bytes() == data
            assert array.count_ones() == sum(
                bin(byte).count("1") for byte in data
            )

    @pytest.mark.parametrize("backend", engine.available_backends())
    @given(sized_payloads(), st.sampled_from([-2, -1, 1, 2]))
    @settings(max_examples=40, deadline=None)
    def test_wrong_length_rejected_on_every_backend(
        self, backend, payload, delta
    ):
        size, data = payload
        resized = data[:delta] if delta < 0 else data + b"\x00" * delta
        with pytest.raises(ValidationError):
            BitArray.from_bytes(resized, size, backend=backend)

    @pytest.mark.parametrize("backend", engine.available_backends())
    @given(sized_payloads())
    @settings(max_examples=60, deadline=None)
    def test_or_bytes_contract_on_every_backend(self, backend, payload):
        size, data = payload
        array = BitArray(size, backend=backend)
        if _padding_dirty(size, data):
            with pytest.raises(ValidationError):
                array.or_bytes(data)
            assert array.count_ones() == 0, "rejected payload mutated state"
        else:
            array.or_bytes(data)
            assert array.to_bytes() == data

    def test_snapshot_with_dirty_padding_is_rejected(self):
        """A hostile period snapshot whose pad bits are set dies in the
        codec itself, and — defense in depth — a hand-constructed
        message object still dies at report reconstruction, before it
        can touch collector state."""
        snapshot = wire.Snapshot(
            rsu_id=1,
            period=0,
            counter=3,
            array_size=21,
            packed_bits=b"\xff\xff\xff",
            seq=1,
        )
        with pytest.raises(WireError, match="padding"):
            wire.decode_frame(wire.encode_frame(snapshot))
        with pytest.raises(ValidationError):
            snapshot.to_report()
        clean = wire.Snapshot.from_report(_report(), seq=1)
        decoded, _ = wire.decode_frame(wire.encode_frame(clean))
        assert decoded.to_report().bits == _report().bits

    @pytest.mark.parametrize("backend", engine.available_backends())
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=25, deadline=None)
    def test_wire_ingest_matches_index_ingest_on_every_backend(
        self, backend, seed, count
    ):
        """The zero-copy admission path must make byte-identical
        accept/reject decisions to the validated path, for any mix of
        vendor MACs and out-of-range indices, on every backend."""
        rng = np.random.default_rng(seed)
        m = 64
        macs = random_macs(count, seed=rng)
        vendor = rng.random(count) < 0.25
        macs[vendor] &= ~np.uint64(0x02_00_00_00_00_00)
        indices = rng.integers(0, 2 * m, size=count, dtype=np.uint32)
        ca = CertificateAuthority(seed=1)
        validated = RoadsideUnit(1, m, ca.issue(1), engine=backend)
        zero_copy = RoadsideUnit(1, m, ca.issue(1), engine=backend)
        validated.handle_index_batch(
            macs.astype(np.uint64), indices.astype(np.int64)
        )
        zero_copy.handle_wire_batch(
            macs.astype(">u8"), indices.astype(">u4")
        )
        assert zero_copy.counter == validated.counter
        assert (
            zero_copy.rejected_responses == validated.rejected_responses
        )
        assert (
            zero_copy.end_period().bits == validated.end_period().bits
        )

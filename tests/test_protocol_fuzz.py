"""Protocol fuzzing: randomized message sequences against the agents.

Hypothesis drives random interleavings of valid, replayed, malformed
and impostor messages at a vehicle and an RSU, checking the agents'
invariants hold regardless of ordering:

* RSU counter == number of *accepted* responses, always;
* set bits <= accepted responses;
* a vehicle answers each RSU at most once per period, whatever the
  query order;
* rejected responses never mutate measurement state.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.parameters import SchemeParameters
from repro.errors import AuthenticationError, ProtocolError
from repro.vcps.ids import random_mac
from repro.vcps.messages import Query, Response
from repro.vcps.pki import CertificateAuthority
from repro.vcps.rsu import RoadsideUnit
from repro.vcps.vehicle import Vehicle

ARRAY_SIZE = 64


def build_world(seed):
    ca = CertificateAuthority(seed=1)
    params = SchemeParameters(s=2, load_factor=2.0, m_o=1 << 10, hash_seed=seed)
    rsu = RoadsideUnit(1, ARRAY_SIZE, ca.issue(1))
    vehicle = Vehicle(
        7, 1234, params, trust_anchor=ca.trust_anchor(), seed=seed
    )
    return ca, rsu, vehicle


# One fuzz "event": what arrives next at the RSU.
events = st.lists(
    st.sampled_from(
        ["valid", "replay_bit", "oob_index", "vendor_mac", "negative_index"]
    ),
    min_size=1,
    max_size=40,
)


class TestRsuFuzz:
    @given(events, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_counter_tracks_accepted_responses_exactly(self, sequence, seed):
        _, rsu, _ = build_world(seed)
        rng = np.random.default_rng(seed)
        accepted = 0
        for event in sequence:
            if event == "valid":
                response = Response(
                    mac=random_mac(rng), bit_index=int(rng.integers(ARRAY_SIZE))
                )
            elif event == "replay_bit":
                response = Response(mac=random_mac(rng), bit_index=0)
            elif event == "oob_index":
                response = Response(mac=random_mac(rng), bit_index=ARRAY_SIZE)
            elif event == "negative_index":
                response = Response(mac=random_mac(rng), bit_index=-1)
            else:  # vendor_mac
                response = Response(mac=0x001A2B3C4D5E, bit_index=1)
            try:
                rsu.handle_response(response)
                accepted += 1
            except ProtocolError:
                pass
        assert rsu.counter == accepted
        report = rsu.end_period()
        assert report.bits.count_ones() <= max(accepted, 0)
        assert report.counter == accepted


class TestVehicleFuzz:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=4),  # rsu id
                st.sampled_from(["good", "rogue", "expired"]),
            ),
            min_size=1,
            max_size=30,
        ),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_at_most_one_answer_per_rsu_per_period(self, sequence, seed):
        ca, _, vehicle = build_world(seed)
        rogue = CertificateAuthority("rogue", seed=2)
        answered = set()
        for rsu_id, kind in sequence:
            if kind == "good":
                cert = ca.issue(rsu_id)
            elif kind == "expired":
                cert = ca.issue(rsu_id, not_after=-1)
            else:
                cert = rogue.issue(rsu_id)
            query = Query(rsu_id=rsu_id, certificate=cert, array_size=ARRAY_SIZE)
            try:
                response = vehicle.handle_query(query)
            except AuthenticationError:
                continue
            if response is not None:
                assert rsu_id not in answered, "double answer within a period"
                answered.add(rsu_id)
                response.validate_for(ARRAY_SIZE)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_period_reset_allows_reanswer_deterministically(self, seed):
        ca, _, vehicle = build_world(seed)
        query = Query(rsu_id=1, certificate=ca.issue(1), array_size=ARRAY_SIZE)
        first = vehicle.handle_query(query)
        vehicle.start_period()
        second = vehicle.handle_query(query)
        assert first is not None and second is not None
        # Same deterministic index both periods (the derivation has no
        # period input), fresh MAC each time.
        assert first.bit_index == second.bit_index
        assert first.mac != second.mac

"""Tests for the Figure 2 experiment (privacy curves)."""

import numpy as np
import pytest

from repro.experiments.figure2 import run_figure2


@pytest.fixture(scope="module")
def result():
    return run_figure2(grid_points=150)


class TestRunFigure2:
    def test_all_curves_present(self, result):
        assert set(result.curves) == {
            (r, s) for r in (1, 10, 50) for s in (2, 5, 10)
        }

    def test_curves_are_probabilities(self, result):
        for curve in result.curves.values():
            assert np.all((curve >= 0) & (curve <= 1))

    def test_paper_reading_optimum_band(self, result):
        for s in (2, 5, 10):
            f_star, p_star = result.optima[(1, s)]
            assert 1.0 < f_star < 5.0
            assert p_star > 0.7

    def test_paper_reading_s5_values(self, result):
        assert result.optima[(1, 5)][1] == pytest.approx(0.75, abs=0.03)
        # f̄=3 readings from the paper: 0.89 (10x) and 0.91 (50x).
        idx = int(np.argmin(np.abs(result.load_factors - 3.0)))
        assert float(result.series(10, 5)[idx]) == pytest.approx(0.89, abs=0.02)
        assert float(result.series(50, 5)[idx]) == pytest.approx(0.91, abs=0.03)

    def test_paper_reading_overload_collapse(self, result):
        idx = int(np.argmin(np.abs(result.load_factors - 50.0)))
        assert float(result.series(1, 2)[idx]) == pytest.approx(0.2, abs=0.05)

    def test_skewed_traffic_improves_optimum(self, result):
        assert result.optima[(10, 5)][1] > result.optima[(1, 5)][1]
        assert result.optima[(50, 5)][1] > result.optima[(1, 5)][1]

    def test_privacy_half_bound(self, result):
        assert 10.0 < result.max_f_privacy_half_s2 < 17.0

    def test_render_mentions_all_plots(self, result):
        text = result.render()
        assert "n_y = 1 n_x" in text
        assert "n_y = 10 n_x" in text
        assert "n_y = 50 n_x" in text
        assert "optima" in text

"""Tests for the longitudinal deployment driver."""

import pytest

from repro.errors import ConfigurationError
from repro.roadnet.generators import grid_network
from repro.roadnet.gravity import gravity_trip_table
from repro.traffic.network_workload import NetworkWorkload
from repro.vcps.deployment import Deployment


@pytest.fixture(scope="module")
def workload():
    network = grid_network(3, 4)
    weights = {node: 1.0 for node in network.nodes}
    trips = gravity_trip_table(
        network, total_trips=30_000, gamma=0.5, weights=weights
    )
    return NetworkWorkload.build(network, trips, seed=2)


@pytest.fixture
def deployment(workload):
    return Deployment(workload, s=2, load_factor=8.0, hash_seed=7, seed=3)


class TestPeriodExecution:
    def test_full_demand_counts_everyone(self, deployment, workload):
        record = deployment.run_period(demand_factor=1.0)
        assert record.volumes == workload.volumes()

    def test_reduced_demand_scales_volumes(self, deployment, workload):
        record = deployment.run_period(demand_factor=0.5)
        base = workload.volumes()
        for node, volume in record.volumes.items():
            assert volume == pytest.approx(base[node] * 0.5, rel=0.15)

    def test_invalid_demand(self, deployment):
        with pytest.raises(ConfigurationError):
            deployment.run_period(demand_factor=0)

    def test_subsampling_is_per_vehicle_consistent(self, deployment, workload):
        """A participating vehicle appears at every node of its route:
        pairwise estimates stay in proportion under subsampling."""
        deployment.run_period(demand_factor=0.6)
        truth = workload.common_volumes()
        heavy = max(truth, key=truth.get)
        estimate = deployment.server.point_to_point(*heavy, period=0)
        assert estimate.value == pytest.approx(0.6 * truth[heavy], rel=0.30)

    def test_week_structure(self, deployment):
        records = deployment.run_week()
        assert len(records) == 7
        assert deployment.periods_run == 7
        weekday = records[0].volumes
        weekend = records[6].volumes
        assert sum(weekend.values()) < sum(weekday.values())


class TestLongitudinal:
    def test_measurements_across_periods(self, deployment, workload):
        deployment.run_period()
        deployment.run_period(demand_factor=0.7)
        truth = workload.common_volumes()
        pair = max(truth, key=truth.get)
        series = deployment.measurements(*pair)
        assert [period for period, _ in series] == [0, 1]
        assert series[0][1].value > series[1][1].value * 0.9

    def test_history_tracks_demand(self, deployment, workload):
        base_total = sum(workload.volumes().values())
        deployment.run_period(demand_factor=0.5)
        averages = deployment.server.history.known_rsus()
        assert sum(averages.values()) < base_total

    def test_headroom_validation(self, workload):
        with pytest.raises(ConfigurationError):
            Deployment(workload, headroom=0.5)

    def test_sizes_never_exceed_m_o(self, deployment):
        for _ in range(3):
            record = deployment.run_period(demand_factor=0.3)
            assert all(
                size <= deployment.params.m_o
                for size in record.array_sizes.values()
            )

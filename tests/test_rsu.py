"""Tests for the RSU agent."""

import pytest

from repro.errors import ProtocolError
from repro.vcps.ids import random_mac
from repro.vcps.messages import Response
from repro.vcps.pki import CertificateAuthority
from repro.vcps.rsu import RoadsideUnit


@pytest.fixture
def ca():
    return CertificateAuthority(seed=1)


@pytest.fixture
def rsu(ca):
    return RoadsideUnit(5, 256, ca.issue(5))


class TestConstruction:
    def test_certificate_subject_checked(self, ca):
        with pytest.raises(ProtocolError):
            RoadsideUnit(5, 256, ca.issue(6))

    def test_query_interval_validated(self, ca):
        with pytest.raises(ProtocolError):
            RoadsideUnit(5, 256, ca.issue(5), query_interval=0)


class TestBroadcast:
    def test_query_content(self, rsu):
        query = rsu.make_query(now=9)
        assert query.rsu_id == 5
        assert query.array_size == 256
        assert query.timestamp == 9
        assert query.certificate.rsu_id == 5

    def test_should_broadcast_interval(self, ca):
        rsu = RoadsideUnit(5, 256, ca.issue(5), query_interval=3)
        assert rsu.should_broadcast(0)
        assert not rsu.should_broadcast(1)
        assert rsu.should_broadcast(3)


class TestCollection:
    def test_handle_response_records(self, rsu):
        rsu.handle_response(Response(mac=random_mac(1), bit_index=9))
        assert rsu.counter == 1
        report = rsu.end_period()
        assert report.bits[9] == 1

    def test_malformed_response_rejected_and_counted(self, rsu):
        with pytest.raises(ProtocolError):
            rsu.handle_response(Response(mac=random_mac(1), bit_index=256))
        assert rsu.counter == 0
        assert rsu.rejected_responses == 1

    def test_vendor_mac_rejected(self, rsu):
        with pytest.raises(ProtocolError):
            rsu.handle_response(Response(mac=0x001A2B3C4D5E, bit_index=1))
        assert rsu.rejected_responses == 1


class TestPeriodLifecycle:
    def test_end_period_resets_and_increments(self, rsu):
        rsu.handle_response(Response(mac=random_mac(1), bit_index=1))
        first = rsu.end_period()
        assert first.period == 0
        assert first.counter == 1
        assert rsu.counter == 0
        second = rsu.end_period()
        assert second.period == 1
        assert second.counter == 0

    def test_reports_are_snapshots(self, rsu):
        rsu.handle_response(Response(mac=random_mac(1), bit_index=1))
        report = rsu.end_period()
        rsu.handle_response(Response(mac=random_mac(2), bit_index=2))
        assert report.bits.count_ones() == 1

"""Tests for the RSU agent."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.vcps.ids import random_mac
from repro.vcps.messages import Response
from repro.vcps.pki import CertificateAuthority
from repro.vcps.rsu import RoadsideUnit


@pytest.fixture
def ca():
    return CertificateAuthority(seed=1)


@pytest.fixture
def rsu(ca):
    return RoadsideUnit(5, 256, ca.issue(5))


class TestConstruction:
    def test_certificate_subject_checked(self, ca):
        with pytest.raises(ProtocolError):
            RoadsideUnit(5, 256, ca.issue(6))

    def test_query_interval_validated(self, ca):
        with pytest.raises(ProtocolError):
            RoadsideUnit(5, 256, ca.issue(5), query_interval=0)


class TestBroadcast:
    def test_query_content(self, rsu):
        query = rsu.make_query(now=9)
        assert query.rsu_id == 5
        assert query.array_size == 256
        assert query.timestamp == 9
        assert query.certificate.rsu_id == 5

    def test_should_broadcast_interval(self, ca):
        rsu = RoadsideUnit(5, 256, ca.issue(5), query_interval=3)
        assert rsu.should_broadcast(0)
        assert not rsu.should_broadcast(1)
        assert rsu.should_broadcast(3)


class TestCollection:
    def test_handle_response_records(self, rsu):
        rsu.handle_response(Response(mac=random_mac(1), bit_index=9))
        assert rsu.counter == 1
        report = rsu.end_period()
        assert report.bits[9] == 1

    def test_malformed_response_rejected_and_counted(self, rsu):
        with pytest.raises(ProtocolError):
            rsu.handle_response(Response(mac=random_mac(1), bit_index=256))
        assert rsu.counter == 0
        assert rsu.rejected_responses == 1

    def test_vendor_mac_rejected(self, rsu):
        with pytest.raises(ProtocolError):
            rsu.handle_response(Response(mac=0x001A2B3C4D5E, bit_index=1))
        assert rsu.rejected_responses == 1


class TestBatchedCollection:
    def test_batch_matches_per_message(self, ca):
        """handle_responses produces bit-identical state to the
        per-message path for the same responses."""
        responses = [
            Response(mac=random_mac(i), bit_index=(7 * i) % 256)
            for i in range(100)
        ]
        one = RoadsideUnit(5, 256, ca.issue(5))
        for response in responses:
            one.handle_response(response)
        batched = RoadsideUnit(5, 256, ca.issue(5))
        recorded = batched.handle_responses(responses)
        assert recorded == 100
        assert batched.counter == one.counter
        assert batched.end_period().bits == one.end_period().bits

    def test_empty_batch(self, rsu):
        assert rsu.handle_responses([]) == 0
        assert rsu.counter == 0

    def test_malformed_entries_dropped_not_fatal(self, rsu):
        batch = [
            Response(mac=random_mac(1), bit_index=3),
            Response(mac=random_mac(2), bit_index=256),  # out of range
            Response(mac=0x001A2B3C4D5E, bit_index=4),  # vendor MAC
            Response(mac=random_mac(3), bit_index=5),
        ]
        assert rsu.handle_responses(batch) == 2
        assert rsu.counter == 2
        assert rsu.rejected_responses == 2
        report = rsu.end_period()
        assert report.bits[3] == 1 and report.bits[5] == 1
        assert report.bits[4] == 0

    def test_index_batch_arrays(self, rsu):
        macs = np.array([random_mac(i) for i in range(4)], dtype=np.uint64)
        indices = np.array([0, 1, 300, -1], dtype=np.int64)
        assert rsu.handle_index_batch(macs, indices) == 2
        assert rsu.rejected_responses == 2

    def test_index_batch_shape_mismatch(self, rsu):
        with pytest.raises(ProtocolError):
            rsu.handle_index_batch(
                np.zeros(2, dtype=np.uint64), np.zeros(3, dtype=np.int64)
            )


class TestPeriodLifecycle:
    def test_end_period_resets_and_increments(self, rsu):
        rsu.handle_response(Response(mac=random_mac(1), bit_index=1))
        first = rsu.end_period()
        assert first.period == 0
        assert first.counter == 1
        assert rsu.counter == 0
        second = rsu.end_period()
        assert second.period == 1
        assert second.counter == 0

    def test_reports_are_snapshots(self, rsu):
        rsu.handle_response(Response(mac=random_mac(1), bit_index=1))
        report = rsu.end_period()
        rsu.handle_response(Response(mac=random_mac(2), bit_index=2))
        assert report.bits.count_ones() == 1

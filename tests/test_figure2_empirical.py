"""Tests for the Figure 2 empirical cross-check option."""

import pytest

from repro.experiments.figure2 import run_figure2


@pytest.fixture(scope="module")
def result():
    return run_figure2(
        grid_points=60,
        ratios=(1, 10),
        empirical_checks=True,
        empirical_trials=4,
    )


class TestEmpiricalChecks:
    def test_points_present(self, result):
        assert result.empirical
        ratios = {ratio for ratio, _, _ in result.empirical}
        assert ratios == {1, 10}

    def test_measured_values_are_probabilities(self, result):
        assert all(0.0 <= p <= 1.0 for p in result.empirical.values())

    def test_measured_close_to_analytic(self, result):
        """The simulated tracker lands within the documented
        approximation band of the paper's formula."""
        from repro.privacy.formulas import preserved_privacy
        from repro.utils.validation import next_power_of_two

        for (ratio, s, f), measured in result.empirical.items():
            n_x = 2_000
            m_x = next_power_of_two(3.0 * n_x)
            m_y = next_power_of_two(3.0 * n_x * ratio)
            analytic = float(
                preserved_privacy(
                    n_x, n_x * ratio, 0.1 * n_x, m_x, m_y, s
                )
            )
            assert measured == pytest.approx(analytic, abs=0.07)

    def test_render_includes_cross_check(self, result):
        assert "Empirical cross-check" in result.render()

    def test_disabled_by_default(self):
        result = run_figure2(grid_points=30, ratios=(1,), s_values=(2,))
        assert not result.empirical

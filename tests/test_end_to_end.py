"""Whole-system integration scenarios spanning many subsystems."""

import pytest

from repro.core.estimator import ZeroFractionPolicy
from repro.core.multiway import estimate_multiway
from repro.core.scheme import VlmScheme
from repro.roadnet.generators import grid_network
from repro.roadnet.gravity import gravity_trip_table
from repro.traffic.network_workload import NetworkWorkload
from repro.vcps.deployment import Deployment
from repro.vcps.persistence import load_server, save_server


@pytest.fixture(scope="module")
def city():
    network = grid_network(3, 3)
    weights = {node: 1.0 for node in network.nodes}
    trips = gravity_trip_table(
        network, total_trips=27_000, gamma=0.5, weights=weights
    )
    return NetworkWorkload.build(network, trips, seed=8)


class TestDeploymentRestartCycle:
    def test_measure_persist_restore_measure(self, city, tmp_path):
        """A deployment runs two periods, persists, restarts, and the
        restored server answers historical queries identically while
        new periods keep flowing."""
        deployment = Deployment(city, s=2, load_factor=8.0, hash_seed=3, seed=4)
        deployment.run_period()
        deployment.run_period(demand_factor=0.7)
        truth = city.common_volumes()
        pair = max(truth, key=truth.get)
        before = deployment.server.point_to_point(*pair, period=0)

        save_server(deployment.server, tmp_path / "state")
        restored = load_server(tmp_path / "state")
        after = restored.point_to_point(*pair, period=0)
        assert after.value == pytest.approx(before.value)
        # The restored server still supports next-period sizing.
        assert restored.next_period_sizes().keys() == set(city.network.nodes)


class TestCrossEstimatorConsistency:
    def test_pairwise_triple_and_matrix_agree(self, city):
        """The decoder's pairwise estimate, the k-way estimator's
        pairwise level, and the all-pairs matrix agree on the same
        data."""
        volumes = city.volumes()
        scheme = VlmScheme(
            volumes, s=2, load_factor=10.0, hash_seed=5,
            policy=ZeroFractionPolicy.CLAMP,
        )
        scheme.run_period(city.passes())
        # Central 3x3 grid nodes 2, 5, 8 form a realistic triple.
        reports = [scheme.decoder.report_for(node) for node in (2, 5, 8)]
        multi = estimate_multiway(tuple(reports), 2)
        matrix = scheme.decoder.all_pairs()
        for key, value in multi.subset_estimates.items():
            if len(key) != 2:
                continue
            pair = tuple(sorted(key))
            assert matrix[pair].value == pytest.approx(
                value, rel=0.30, abs=150
            )
        # The triple is bounded by its tightest pair.
        tightest = min(
            v for k, v in multi.subset_estimates.items() if len(k) == 2
        )
        assert multi.value <= tightest * 1.3 + 150

    def test_scheme_estimates_track_network_truth(self, city):
        volumes = city.volumes()
        scheme = VlmScheme(
            volumes, s=2, load_factor=10.0, hash_seed=6,
            policy=ZeroFractionPolicy.CLAMP,
        )
        scheme.run_period(city.passes())
        truth = city.common_volumes()
        heavy = sorted(truth, key=truth.get, reverse=True)[:5]
        for pair in heavy:
            estimate = scheme.decoder.pair_estimate(*pair)
            assert estimate.error_ratio(truth[pair]) < 0.20


class TestFleetScaleSmoke:
    def test_half_million_vehicle_period(self):
        """Paper-scale smoke: one 550k-vehicle pair encodes and decodes
        in-process without drama."""
        from repro.traffic.random_workload import make_pair_population

        pop = make_pair_population(50_000, 500_000, 10_000, seed=9)
        scheme = VlmScheme(
            pop.volumes(), s=2, load_factor=13.0, hash_seed=9,
            policy=ZeroFractionPolicy.CLAMP,
        )
        reports = scheme.run_period(pop.passes())
        assert reports[pop.rsu_y].counter == 500_000
        estimate = scheme.decoder.pair_estimate(pop.rsu_x, pop.rsu_y)
        assert estimate.error_ratio(10_000) < 0.20

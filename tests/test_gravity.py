"""Tests for the gravity-model trip synthesis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CalibrationError, NetworkDataError
from repro.roadnet.gravity import DEFAULT_NODE_WEIGHTS, gravity_trip_table
from repro.roadnet.routing import assign_routes
from repro.roadnet.sioux_falls import sioux_falls_network
from repro.roadnet.volumes import node_volumes


@pytest.fixture(scope="module")
def network():
    return sioux_falls_network()


class TestGravityTripTable:
    def test_total_close_to_target(self, network):
        table = gravity_trip_table(network, total_trips=100_000)
        assert table.total_trips == pytest.approx(100_000, rel=0.01)

    def test_every_od_pair_possible(self, network):
        table = gravity_trip_table(network, total_trips=500_000)
        # At this scale all 24*23 pairs get nonzero demand.
        assert len(table) == 24 * 23

    def test_friction_shifts_demand_to_near_pairs(self, network):
        flat = gravity_trip_table(network, total_trips=100_000, gamma=0.0)
        steep = gravity_trip_table(network, total_trips=100_000, gamma=2.0)
        # 9-10 are adjacent; 1-20 are far apart.
        near_share_flat = flat.trips(9, 10) / flat.total_trips
        near_share_steep = steep.trips(9, 10) / steep.total_trips
        assert near_share_steep > near_share_flat
        far_share_flat = flat.trips(1, 20) / flat.total_trips
        far_share_steep = steep.trips(1, 20) / steep.total_trips
        assert far_share_steep < far_share_flat

    def test_node_10_heaviest_by_default(self, network):
        """The paper's anchor: node 10 carries the largest transit
        volume in the Sioux Falls workload."""
        table = gravity_trip_table(network, total_trips=100_000)
        volumes = node_volumes(assign_routes(network, table))
        assert max(volumes, key=volumes.get) == 10

    def test_missing_weights_rejected(self, network):
        with pytest.raises(NetworkDataError):
            gravity_trip_table(network, weights={1: 1.0})

    def test_invalid_parameters(self, network):
        with pytest.raises(CalibrationError):
            gravity_trip_table(network, total_trips=0)
        with pytest.raises(CalibrationError):
            gravity_trip_table(network, gamma=-1)

    def test_default_weights_cover_all_nodes(self):
        assert set(DEFAULT_NODE_WEIGHTS) == set(range(1, 25))


class TestGravityProperties:
    """Hypothesis invariants across networks, targets, and gammas."""

    @given(
        rows=st.integers(2, 5),
        cols=st.integers(2, 5),
        total=st.integers(1_000, 200_000),
        gamma=st.floats(0.0, 3.0, allow_nan=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_demand_non_negative_and_conserved(self, rows, cols, total, gamma):
        from repro.roadnet.generators import grid_network

        network = grid_network(rows, cols)
        weights = {node: 1.0 for node in network.nodes}
        table = gravity_trip_table(
            network, total_trips=total, gamma=gamma, weights=weights
        )
        counts = [count for _, count in table.pairs()]
        # Non-negative (strictly positive: zero-demand pairs are
        # dropped) and off-diagonal only.
        assert all(count > 0 for count in counts)
        assert all(o != d for (o, d), _ in table.pairs())
        # Conserved: rounding drifts by at most half a vehicle per pair.
        pairs = rows * cols * (rows * cols - 1)
        assert abs(table.total_trips - total) <= max(pairs // 2, 1)
        # Production/attraction marginals re-add to the same total.
        nodes = table.nodes()
        assert sum(table.production(n) for n in nodes) == table.total_trips
        assert sum(table.attraction(n) for n in nodes) == table.total_trips

    @given(total=st.integers(5_000, 50_000), gamma=st.floats(0.0, 2.0))
    @settings(max_examples=15, deadline=None)
    def test_synthesis_is_deterministic(self, total, gamma):
        net = sioux_falls_network()
        a = gravity_trip_table(net, total_trips=total, gamma=gamma)
        b = gravity_trip_table(net, total_trips=total, gamma=gamma)
        assert dict(a.pairs()) == dict(b.pairs())

"""Tests for the gravity-model trip synthesis."""

import pytest

from repro.errors import CalibrationError, NetworkDataError
from repro.roadnet.gravity import DEFAULT_NODE_WEIGHTS, gravity_trip_table
from repro.roadnet.routing import assign_routes
from repro.roadnet.sioux_falls import sioux_falls_network
from repro.roadnet.volumes import node_volumes


@pytest.fixture(scope="module")
def network():
    return sioux_falls_network()


class TestGravityTripTable:
    def test_total_close_to_target(self, network):
        table = gravity_trip_table(network, total_trips=100_000)
        assert table.total_trips == pytest.approx(100_000, rel=0.01)

    def test_every_od_pair_possible(self, network):
        table = gravity_trip_table(network, total_trips=500_000)
        # At this scale all 24*23 pairs get nonzero demand.
        assert len(table) == 24 * 23

    def test_friction_shifts_demand_to_near_pairs(self, network):
        flat = gravity_trip_table(network, total_trips=100_000, gamma=0.0)
        steep = gravity_trip_table(network, total_trips=100_000, gamma=2.0)
        # 9-10 are adjacent; 1-20 are far apart.
        near_share_flat = flat.trips(9, 10) / flat.total_trips
        near_share_steep = steep.trips(9, 10) / steep.total_trips
        assert near_share_steep > near_share_flat
        far_share_flat = flat.trips(1, 20) / flat.total_trips
        far_share_steep = steep.trips(1, 20) / steep.total_trips
        assert far_share_steep < far_share_flat

    def test_node_10_heaviest_by_default(self, network):
        """The paper's anchor: node 10 carries the largest transit
        volume in the Sioux Falls workload."""
        table = gravity_trip_table(network, total_trips=100_000)
        volumes = node_volumes(assign_routes(network, table))
        assert max(volumes, key=volumes.get) == 10

    def test_missing_weights_rejected(self, network):
        with pytest.raises(NetworkDataError):
            gravity_trip_table(network, weights={1: 1.0})

    def test_invalid_parameters(self, network):
        with pytest.raises(CalibrationError):
            gravity_trip_table(network, total_trips=0)
        with pytest.raises(CalibrationError):
            gravity_trip_table(network, gamma=-1)

    def test_default_weights_cover_all_nodes(self):
        assert set(DEFAULT_NODE_WEIGHTS) == set(range(1, 25))

"""Graceful shutdown: ``repro serve`` drains and exits 0 on SIGTERM.

Spawns the real CLI in a subprocess (unsharded and federated), streams
a little traffic, delivers SIGTERM, and asserts the process drains its
queues, flushes the WAL tail, prints the shutdown summary, and exits
cleanly — the integration contract behind rolling restarts.
"""

import os
import signal
import socket
import subprocess
import sys
import time

import pytest

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def free_port_block(count):
    """A run of *count* consecutive ports that are free right now.

    The federated serve derives shard ports as base, base+1, ... from
    one ``--gateway-port`` flag, so the whole block must be bindable.
    """
    for _ in range(50):
        probe = socket.socket()
        try:
            probe.bind(("127.0.0.1", 0))
            base = probe.getsockname()[1]
        finally:
            probe.close()
        if base + count >= 65535:
            continue
        sockets = []
        try:
            for offset in range(count):
                sock = socket.socket()
                sockets.append(sock)
                sock.bind(("127.0.0.1", base + offset))
        except OSError:
            continue
        finally:
            for sock in sockets:
                sock.close()
        return list(range(base, base + count))
    raise RuntimeError("no free consecutive port block found")


def spawn_serve(extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--trips", "800"]
        + extra_args,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def wait_for_port(port, *, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            socket.create_connection(("127.0.0.1", port), timeout=1).close()
            return
        except OSError:
            time.sleep(0.1)
    raise TimeoutError(f"port {port} never came up")


def terminate_and_collect(process, *, timeout=60.0):
    process.send_signal(signal.SIGTERM)
    try:
        output, _ = process.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        output, _ = process.communicate()
        pytest.fail(f"serve did not exit after SIGTERM; output:\n{output}")
    return process.returncode, output


class TestUnshardedServe:
    def test_sigterm_drains_and_exits_zero(self):
        gateway_port, collector_port = free_port_block(2)
        process = spawn_serve(
            [
                "--gateway-port", str(gateway_port),
                "--collector-port", str(collector_port),
            ]
        )
        try:
            wait_for_port(gateway_port)
            code, output = terminate_and_collect(process)
        finally:
            if process.poll() is None:
                process.kill()
        assert code == 0, output
        assert "shutdown complete" in output
        assert "ingest queue drained" in output


class TestFederatedServe:
    def test_sigterm_flushes_wal_and_exits_zero(self, tmp_path):
        base, _, collector_port = free_port_block(3)
        wal_path = tmp_path / "serve.wal"
        process = spawn_serve(
            [
                "--shards", "2",
                "--gateway-port", str(base),
                "--collector-port", str(collector_port),
                "--wal", str(wal_path),
            ]
        )
        try:
            wait_for_port(collector_port)
            code, output = terminate_and_collect(process)
        finally:
            if process.poll() is None:
                process.kill()
        assert code == 0, output
        assert "shutdown complete: 2 shards drained" in output
        assert "wal synced" in output
        # The WAL file exists and is intact (no responses streamed, so
        # it may be empty — the point is the tail was flushed, not torn).
        assert wal_path.exists()
        from repro.federation.wal import replay_wal

        list(replay_wal(wal_path))

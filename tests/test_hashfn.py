"""Unit and statistical tests for repro.hashing.hashfn."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hashing.hashfn import hash_to_range, hash_u64, splitmix64


class TestSplitmix64:
    def test_deterministic(self):
        assert int(splitmix64(12345)) == int(splitmix64(12345))

    def test_vectorized_matches_scalar(self):
        values = np.arange(100, dtype=np.uint64)
        vector = splitmix64(values)
        for i in (0, 17, 99):
            assert int(vector[i]) == int(splitmix64(int(values[i])))

    def test_no_collisions_on_small_range(self):
        # splitmix64 finalization is a bijection on 64-bit words.
        out = splitmix64(np.arange(100_000, dtype=np.uint64))
        assert np.unique(out).size == 100_000


class TestHashU64:
    def test_seed_changes_output(self):
        assert int(hash_u64(7, seed=1)) != int(hash_u64(7, seed=2))

    def test_same_seed_same_output(self):
        assert int(hash_u64(7, seed=9)) == int(hash_u64(7, seed=9))

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_accepts_full_u64_domain(self, value):
        out = int(hash_u64(np.uint64(value)))
        assert 0 <= out < 2**64


class TestHashToRange:
    def test_range_respected(self):
        out = hash_to_range(np.arange(10_000, dtype=np.uint64), 1024)
        assert out.min() >= 0
        assert out.max() < 1024

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            hash_to_range(1, 0)

    def test_uniformity_chi_square(self):
        """Power-of-two reduction should be uniform: chi-square over 64
        buckets with 64k samples stays within a generous bound."""
        buckets = 64
        samples = 65_536
        out = hash_to_range(np.arange(samples, dtype=np.uint64), buckets, seed=5)
        counts = np.bincount(out, minlength=buckets)
        expected = samples / buckets
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        # 63 dof; mean 63, std ~11.2; 5 sigma ~ 120.
        assert chi2 < 120.0

    def test_non_power_of_two_modulus_supported(self):
        out = hash_to_range(np.arange(1000, dtype=np.uint64), 997)
        assert out.max() < 997

    def test_distinct_inputs_spread(self):
        out = hash_to_range(np.arange(4096, dtype=np.uint64), 1 << 20)
        # Essentially no collisions expected at this density.
        assert np.unique(out).size > 4080

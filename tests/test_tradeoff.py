"""Tests for the privacy-accuracy tradeoff experiment."""

import pytest

from repro.experiments.tradeoff import run_tradeoff


@pytest.fixture(scope="module")
def result():
    return run_tradeoff(n_x=10_000, ratio=10, s=2)


class TestRunTradeoff:
    def test_both_schemes_swept(self, result):
        schemes = {p.scheme for p in result.points}
        assert schemes == {"vlm", "baseline"}

    def test_points_are_valid(self, result):
        for point in result.points:
            assert 0.0 <= point.privacy <= 1.0
            assert point.relative_stddev > 0

    def test_vlm_dominates_at_privacy_floors(self, result):
        """The paper's thesis on one chart: for every privacy floor,
        VLM reaches better accuracy than the baseline."""
        for floor in (0.5, 0.7, 0.8):
            vlm = result.best_accuracy_at_privacy("vlm", floor)
            base = result.best_accuracy_at_privacy("baseline", floor)
            assert vlm < base

    def test_vlm_better_at_equal_load_factor(self, result):
        """At the same f in the paper's operating band (f <= ~13) the
        VLM point is better on *both* axes — the baseline's heavy RSU
        is starved of bits.  (At very large f the points trade off
        instead of dominating, which is why the frontier comparison in
        the previous test is the headline claim.)"""
        by_f = {}
        for point in result.points:
            by_f.setdefault(point.load_factor, {})[point.scheme] = point
        for f, pair in by_f.items():
            if f > 13 or "vlm" not in pair or "baseline" not in pair:
                continue
            vlm, base = pair["vlm"], pair["baseline"]
            assert vlm.privacy >= base.privacy - 1e-9
            assert vlm.relative_stddev <= base.relative_stddev + 1e-9

    def test_frontier_sorted(self, result):
        frontier = result.frontier("vlm")
        privacies = [p.privacy for p in frontier]
        assert privacies == sorted(privacies)

    def test_render(self, result):
        text = result.render()
        assert "tradeoff frontier" in text
        assert "pseudonym strawman" in text

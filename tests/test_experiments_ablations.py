"""Tests for the design-choice ablations."""

import numpy as np
import pytest

from repro.core.bitarray import BitArray
from repro.experiments.ablations import fold_down, run_ablations


class TestFoldDown:
    def test_or_reduction(self):
        array = BitArray.from_indices(8, [0, 5])
        folded = fold_down(array, 4)
        # bit 5 -> 5 mod 4 = 1; bit 0 -> 0.
        assert [folded[i] for i in range(4)] == [1, 1, 0, 0]

    def test_identity_at_same_size(self):
        array = BitArray.from_indices(4, [2])
        assert fold_down(array, 4) == array

    def test_non_divisor_rejected(self):
        with pytest.raises(ValueError):
            fold_down(BitArray(8), 3)

    def test_preserves_ones(self):
        rng = np.random.default_rng(3)
        array = BitArray.from_bits(rng.random(64) < 0.2)
        folded = fold_down(array, 16)
        assert folded.count_ones() <= array.count_ones()
        # every source one lands somewhere
        for i in range(64):
            if array[i]:
                assert folded[i % 16] == 1


@pytest.fixture(scope="module")
def result():
    return run_ablations(
        n_x=4_000, ratio=10, n_c=800, load_factor=6.0, repetitions=4, seed=8
    )


class TestRunAblations:
    def test_three_studies(self, result):
        studies = {row.study for row in result.rows}
        assert studies == {
            "unfold-up vs fold-down",
            "load-factor band",
            "effect of s",
        }

    def test_unfold_up_beats_fold_down(self, result):
        rows = {row.label: row for row in result.study("unfold-up vs fold-down")}
        assert (
            rows["unfold up (paper)"].mean_abs_error
            < rows["fold down (alternative)"].mean_abs_error
        )

    def test_larger_arrays_help(self, result):
        rows = result.study("load-factor band")
        floor, ceiling = rows[0], rows[1]
        # doubling the array size should not make things much worse
        assert ceiling.mean_abs_error < floor.mean_abs_error * 2.0

    def test_s_rows_present(self, result):
        labels = [row.label for row in result.study("effect of s")]
        assert labels == ["s = 2", "s = 5", "s = 10"]

    def test_render(self, result):
        text = result.render()
        assert "Ablation" in text
        assert "fold down" in text

"""Tests for the compressed report wire encoding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bitarray import BitArray
from repro.core.compression import (
    Encoding,
    decode_bits,
    decode_report,
    encode_bits,
    encode_report,
)
from repro.core.reports import RsuReport
from repro.errors import ProtocolError


def random_bits(size, density, seed):
    rng = np.random.default_rng(seed)
    return BitArray.from_bits(rng.random(size) < density)


class TestRoundTrip:
    @pytest.mark.parametrize("density", [0.0, 0.01, 0.1, 0.5, 0.9, 1.0])
    @pytest.mark.parametrize("size", [8, 64, 1024, 4096])
    def test_all_densities(self, density, size):
        bits = random_bits(size, density, seed=size)
        assert decode_bits(encode_bits(bits), size) == bits

    @given(
        st.integers(min_value=1, max_value=500),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60)
    def test_round_trip_property(self, size, density, seed):
        bits = random_bits(size, density, seed)
        assert decode_bits(encode_bits(bits), size) == bits

    def test_report_round_trip(self):
        report = RsuReport(
            rsu_id=42, counter=17, bits=random_bits(256, 0.1, 3), period=5
        )
        restored = decode_report(encode_report(report))
        assert restored.rsu_id == 42
        assert restored.counter == 17
        assert restored.period == 5
        assert restored.bits == report.bits


class TestCompressionEffectiveness:
    def test_sparse_beats_raw(self):
        """A sparse array (load 1%) compresses well below the bitmap."""
        bits = random_bits(1 << 16, 0.01, 7)
        encoded = encode_bits(bits)
        raw_size = 1 + (1 << 16) // 8
        assert len(encoded) < raw_size / 2

    def test_selector_never_worse_than_raw(self):
        for density in (0.0, 0.2, 0.5, 0.8, 1.0):
            bits = random_bits(2048, density, seed=int(density * 10))
            assert len(encode_bits(bits)) <= 1 + 2048 // 8

    def test_clustered_uses_runs(self):
        bits = BitArray(1024)
        bits.set_bits(np.arange(100, 612))  # one long run
        encoded = encode_bits(bits)
        assert encoded[0] == Encoding.RUNS
        assert len(encoded) < 20

    def test_dense_random_uses_raw(self):
        bits = random_bits(2048, 0.5, 11)
        assert encode_bits(bits)[0] == Encoding.RAW


class TestMalformedPayloads:
    def test_empty(self):
        with pytest.raises(ProtocolError):
            decode_bits(b"", 8)

    def test_unknown_tag(self):
        with pytest.raises(ProtocolError):
            decode_bits(bytes([9, 0]), 8)

    def test_truncated_varint(self):
        with pytest.raises(ProtocolError):
            decode_bits(bytes([Encoding.INDICES, 0x80]), 8)

    def test_raw_length_mismatch(self):
        with pytest.raises(ProtocolError):
            decode_bits(bytes([Encoding.RAW, 0, 0, 0]), 8)

    def test_indices_out_of_range(self):
        payload = bytearray([Encoding.INDICES])
        payload += bytes([1])  # one index
        payload += bytes([200])  # gap 200 -> position 200 >= size 8
        with pytest.raises(ProtocolError):
            decode_bits(bytes(payload), 8)

    def test_runs_wrong_total(self):
        payload = bytearray([Encoding.RUNS, 0, 1, 4])  # covers 4 of 8 bits
        with pytest.raises(ProtocolError):
            decode_bits(bytes(payload), 8)

    def test_runs_overflow(self):
        payload = bytearray([Encoding.RUNS, 0, 1, 200])
        with pytest.raises(ProtocolError):
            decode_bits(bytes(payload), 8)

    def test_bad_first_run_value(self):
        payload = bytearray([Encoding.RUNS, 7, 1, 8])
        with pytest.raises(ProtocolError):
            decode_bits(bytes(payload), 8)

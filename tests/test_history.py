"""Tests for historical volume tracking."""

import pytest

from repro.errors import ConfigurationError
from repro.vcps.history import VolumeHistory


class TestSeeding:
    def test_initial_averages(self):
        history = VolumeHistory({1: 100.0, 2: 250.0})
        assert history.average(1) == 100.0
        assert history.known_rsus() == {1: 100.0, 2: 250.0}

    def test_unknown_rsu(self):
        with pytest.raises(ConfigurationError, match="no history"):
            VolumeHistory().average(9)

    def test_invalid_seed_volume(self):
        with pytest.raises(ConfigurationError):
            VolumeHistory({1: 0})

    def test_invalid_smoothing(self):
        with pytest.raises(ConfigurationError):
            VolumeHistory(smoothing=0.0)
        with pytest.raises(ConfigurationError):
            VolumeHistory(smoothing=1.5)


class TestCumulativeMean:
    def test_first_observation_without_seed(self):
        history = VolumeHistory()
        assert history.observe(1, 40) == 40.0

    def test_seeded_mean(self):
        history = VolumeHistory({1: 100.0})
        # (100 * 1 + 50) / 2 — the seed counts as one period.
        assert history.observe(1, 50) == pytest.approx(75.0)
        assert history.observe(1, 75) == pytest.approx((75 * 2 + 75) / 3)

    def test_negative_volume_rejected(self):
        with pytest.raises(ConfigurationError):
            VolumeHistory().observe(1, -1)


class TestEwma:
    def test_smoothing(self):
        history = VolumeHistory({1: 100.0}, smoothing=0.5)
        assert history.observe(1, 200) == pytest.approx(150.0)
        assert history.observe(1, 150) == pytest.approx(150.0)

    def test_observe_all(self):
        history = VolumeHistory({1: 100.0, 2: 100.0}, smoothing=1.0)
        history.observe_all({1: 10, 2: 20})
        assert history.average(1) == 10.0
        assert history.average(2) == 20.0

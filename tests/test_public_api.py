"""Public-API surface checks: exports resolve, docstrings exist."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.engine",
    "repro.baseline",
    "repro.hashing",
    "repro.privacy",
    "repro.accuracy",
    "repro.vcps",
    "repro.roadnet",
    "repro.traffic",
    "repro.experiments",
    "repro.utils",
    "repro.analysis",
    "repro.apps",
    "repro.service",
    "repro.obs",
    "repro.federation",
]


def iter_all_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                yield importlib.import_module(f"{package_name}.{info.name}")


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_top_level_quickstart_symbols(self):
        for name in (
            "VlmScheme",
            "FixedLengthScheme",
            "make_pair_population",
            "preserved_privacy",
            "BitArray",
        ):
            assert hasattr(repro, name)

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        for module in iter_all_modules():
            assert module.__doc__, f"{module.__name__} lacks a module docstring"

    def test_every_public_callable_documented(self):
        """Every class/function re-exported in a package's __all__
        carries a docstring."""
        undocumented = []
        for package_name in PACKAGES:
            package = importlib.import_module(package_name)
            for name in getattr(package, "__all__", []):
                obj = getattr(package, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        undocumented.append(f"{package_name}.{name}")
        assert not undocumented, f"undocumented public items: {undocumented}"

    def test_public_classes_document_their_methods(self):
        """Spot-check: public methods of the flagship classes are
        documented."""
        from repro.core.bitarray import BitArray
        from repro.core.scheme import VlmScheme
        from repro.vcps.server import CentralServer

        for cls in (BitArray, VlmScheme, CentralServer):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                assert inspect.getdoc(member), f"{cls.__name__}.{name} undocumented"


class TestDeprecatedAliases:
    """The pre-unification result field names still resolve — to the
    canonical ``.value`` — but warn so callers migrate."""

    CASES = [
        ("repro.core.estimator", "PairEstimate", "n_c_hat"),
        ("repro.core.multiway", "TripleEstimate", "n_xyz_hat"),
        ("repro.core.multiway", "MultiwayEstimate", "n_hat"),
        ("repro.core.multiperiod", "AggregatedEstimate", "n_c_hat"),
    ]

    @pytest.mark.parametrize("module_name,class_name,alias", CASES)
    def test_alias_resolves_to_value_and_warns(
        self, module_name, class_name, alias
    ):
        module = importlib.import_module(module_name)
        cls = getattr(module, class_name)
        instance = object.__new__(cls)
        object.__setattr__(instance, "value", 42.5)
        with pytest.warns(DeprecationWarning, match=alias):
            assert getattr(instance, alias) == 42.5

    def test_aliases_do_not_warn_on_class_access(self):
        """Introspection (help(), inspect) touches the descriptor on
        the class without tripping the warning."""
        import warnings

        from repro.core.estimator import PairEstimate

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            PairEstimate.n_c_hat

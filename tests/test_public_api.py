"""Public-API surface checks: exports resolve, docstrings exist."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.baseline",
    "repro.hashing",
    "repro.privacy",
    "repro.accuracy",
    "repro.vcps",
    "repro.roadnet",
    "repro.traffic",
    "repro.experiments",
    "repro.utils",
    "repro.analysis",
    "repro.apps",
]


def iter_all_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                yield importlib.import_module(f"{package_name}.{info.name}")


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_top_level_quickstart_symbols(self):
        for name in (
            "VlmScheme",
            "FixedLengthScheme",
            "make_pair_population",
            "preserved_privacy",
            "BitArray",
        ):
            assert hasattr(repro, name)

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        for module in iter_all_modules():
            assert module.__doc__, f"{module.__name__} lacks a module docstring"

    def test_every_public_callable_documented(self):
        """Every class/function re-exported in a package's __all__
        carries a docstring."""
        undocumented = []
        for package_name in PACKAGES:
            package = importlib.import_module(package_name)
            for name in getattr(package, "__all__", []):
                obj = getattr(package, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        undocumented.append(f"{package_name}.{name}")
        assert not undocumented, f"undocumented public items: {undocumented}"

    def test_public_classes_document_their_methods(self):
        """Spot-check: public methods of the flagship classes are
        documented."""
        from repro.core.bitarray import BitArray
        from repro.core.scheme import VlmScheme
        from repro.vcps.server import CentralServer

        for cls in (BitArray, VlmScheme, CentralServer):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                assert inspect.getdoc(member), f"{cls.__name__}.{name} undocumented"

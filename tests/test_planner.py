"""Tests for the deployment planner."""

import pytest

from repro.analysis.planner import plan_deployment
from repro.errors import ConfigurationError

VOLUMES = {
    "hub": 500_000.0,
    "arterial": 120_000.0,
    "collector": 20_000.0,
}


@pytest.fixture(scope="module")
def plan():
    return plan_deployment(VOLUMES, s=2, privacy_floor=0.5)


class TestPlanDeployment:
    def test_load_factor_from_binding_class(self, plan):
        # Binding class is the collector (smallest volume); f near 13.
        assert 10.0 < plan.load_factor < 17.0

    def test_sizes_follow_rule(self, plan):
        hub = plan.rsu("hub")
        assert hub.array_size & (hub.array_size - 1) == 0
        assert hub.array_size >= plan.load_factor * 500_000

    def test_realized_factor_band(self, plan):
        for rsu in plan.rsus:
            assert plan.load_factor <= rsu.realized_load_factor < 2 * plan.load_factor + 1e-9

    def test_memory_accounting(self, plan):
        assert plan.total_memory_kib() == pytest.approx(
            sum(r.array_size for r in plan.rsus) / 8 / 1024
        )

    def test_expected_fill_reasonable(self, plan):
        # At load factors >= 13 the fill is below ~8%.
        for rsu in plan.rsus:
            assert 0.0 < rsu.expected_fill < 0.10

    def test_privacy_floor_met_on_every_pair(self, plan):
        assert plan.worst_pair_privacy() >= 0.5 - 0.02

    def test_pair_forecasts_cover_all_class_pairs(self, plan):
        names = {frozenset(p.pair) for p in plan.pairs}
        assert frozenset(("collector", "hub")) in names
        assert frozenset(("arterial", "hub")) in names

    def test_optimal_mode(self):
        plan = plan_deployment(VOLUMES, s=5, privacy_floor=None)
        assert 1.0 < plan.load_factor < 6.0  # near f* for s=5

    def test_unknown_rsu_lookup(self, plan):
        with pytest.raises(ConfigurationError):
            plan.rsu("bogus")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            plan_deployment({})
        with pytest.raises(ConfigurationError):
            plan_deployment({"x": 0})

    def test_render(self, plan):
        text = plan.render()
        assert "Deployment plan" in text
        assert "hub" in text
        assert "binding pair privacy" in text

    def test_single_class(self):
        plan = plan_deployment({"only": 10_000.0})
        assert len(plan.rsus) == 1
        assert len(plan.pairs) == 1  # the self-pair forecast

"""Tests for the central server."""

import pytest

from repro.core.bitarray import BitArray
from repro.core.encoder import encode_passes
from repro.core.parameters import SchemeParameters
from repro.core.reports import RsuReport
from repro.core.sizing import StaticSizing
from repro.traffic.population import VehicleFleet
from repro.vcps.history import VolumeHistory
from repro.vcps.server import CentralServer


@pytest.fixture
def server():
    return CentralServer(
        2, StaticSizing(4.0), history=VolumeHistory({1: 1_000, 2: 2_000})
    )


def genuine_report(rsu_id, n, m, seed=0, period=0):
    params = SchemeParameters(s=2, load_factor=1.0, m_o=max(m, 4), hash_seed=seed)
    fleet = VehicleFleet.random(n, seed=seed)
    return encode_passes(fleet.ids, fleet.keys, rsu_id, m, params, period=period)


class TestIngestion:
    def test_receive_updates_history(self, server):
        server.receive_report(genuine_report(1, 1_200, 4_096))
        assert server.history.average(1) == pytest.approx((1_000 + 1_200) / 2)

    def test_next_period_sizes_follow_history(self, server):
        sizes = server.next_period_sizes()
        assert sizes == {1: 4_096, 2: 8_192}
        server.receive_report(genuine_report(2, 30_000, 8_192))
        assert server.next_period_sizes()[2] > 8_192

    def test_point_volume(self, server):
        server.receive_report(genuine_report(1, 500, 4_096))
        assert server.point_volume(1) == 500


class TestAnomalyDetection:
    def test_clean_report_not_flagged(self, server):
        server.receive_report(genuine_report(1, 2_000, 4_096))
        assert server.anomalies == []

    def test_counter_array_mismatch_flagged(self, server):
        """An RSU claiming 10x more vehicles than its array shows is
        caught by the bitmap cross-check."""
        honest = genuine_report(1, 500, 4_096)
        tampered = RsuReport(
            rsu_id=1, counter=5_000, bits=honest.bits, period=0
        )
        server.receive_report(tampered)
        assert len(server.anomalies) == 1
        anomaly = server.anomalies[0]
        assert anomaly.rsu_id == 1
        assert anomaly.counter == 5_000
        assert anomaly.bitmap_estimate == pytest.approx(500, rel=0.3)

    def test_empty_report_not_flagged(self, server):
        server.receive_report(RsuReport(rsu_id=1, counter=0, bits=BitArray(64)))
        assert server.anomalies == []


class TestMeasurement:
    def test_point_to_point_and_matrix(self, server):
        params = SchemeParameters(s=2, load_factor=1.0, m_o=8_192, hash_seed=4)
        fleet = VehicleFleet.random(3_000, seed=4)
        # RSU 1 sees [0, 1000); RSU 2 sees [500, 3000): overlap 500.
        r1 = encode_passes(fleet.ids[:1_000], fleet.keys[:1_000], 1, 4_096, params)
        r2 = encode_passes(fleet.ids[500:], fleet.keys[500:], 2, 8_192, params)
        server.receive_reports([r1, r2])
        estimate = server.point_to_point(1, 2)
        assert estimate.error_ratio(500) < 0.4
        matrix = server.traffic_matrix()
        assert set(matrix) == {(1, 2)}

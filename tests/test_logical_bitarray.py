"""Tests for repro.hashing.logical_bitarray — the per-vehicle masking
core the whole scheme rests on."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing.logical_bitarray import LogicalBitArray, salt_slot, select_indices
from repro.hashing.salts import SaltArray


@pytest.fixture
def salts():
    return SaltArray(4, seed=0)


class TestSaltSlot:
    def test_range(self):
        ids = np.arange(10_000, dtype=np.uint64)
        keys = np.zeros(10_000, dtype=np.uint64)
        slots = salt_slot(ids, keys, 3, 4)
        assert slots.min() >= 0 and slots.max() < 4

    def test_uniform_over_slots(self):
        ids = np.arange(40_000, dtype=np.uint64)
        keys = ids * np.uint64(3)
        slots = salt_slot(ids, keys, rsu_id=9, s=4)
        counts = np.bincount(slots, minlength=4)
        assert abs(counts.max() - counts.min()) < 600  # ~6 sigma at n=40k

    def test_collision_probability_is_one_over_s(self):
        """A vehicle picks the same slot at two distinct RSUs w.p. 1/s —
        the statistical heart of Eq. (6)."""
        n, s = 50_000, 5
        ids = np.arange(n, dtype=np.uint64)
        keys = np.full(n, 77, dtype=np.uint64)
        a = salt_slot(ids, keys, 101, s)
        b = salt_slot(ids, keys, 202, s)
        rate = float((a == b).mean())
        assert rate == pytest.approx(1.0 / s, abs=0.01)

    def test_deterministic_per_vehicle_rsu(self):
        assert int(salt_slot(5, 9, 3, 4)) == int(salt_slot(5, 9, 3, 4))

    def test_invalid_s(self):
        with pytest.raises(ConfigurationError):
            salt_slot(1, 1, 1, 0)


class TestSelectIndices:
    def test_range(self, salts):
        ids = np.arange(1000, dtype=np.uint64)
        keys = ids + np.uint64(1)
        out = select_indices(ids, keys, 7, salts, 1 << 10)
        assert out.min() >= 0 and out.max() < 1 << 10

    def test_requires_power_of_two(self, salts):
        with pytest.raises(ConfigurationError):
            select_indices(np.array([1], dtype=np.uint64),
                           np.array([1], dtype=np.uint64), 7, salts, 1000)

    def test_matches_object_api(self, salts):
        """Vectorized selection must agree with the per-vehicle
        LogicalBitArray (modulo the final m_x reduction)."""
        m_o = 1 << 12
        ids = np.arange(64, dtype=np.uint64)
        keys = ids * np.uint64(5) + np.uint64(3)
        rsu_id = 42
        bulk = select_indices(ids, keys, rsu_id, salts, m_o)
        for i in (0, 13, 63):
            agent = LogicalBitArray(int(ids[i]), int(keys[i]), salts, m_o)
            assert agent.bit_for_rsu(rsu_id, m_o) == int(bulk[i])

    def test_key_changes_index(self, salts):
        a = select_indices(np.array([5], dtype=np.uint64),
                           np.array([1], dtype=np.uint64), 7, salts, 1 << 16)
        b = select_indices(np.array([5], dtype=np.uint64),
                           np.array([2], dtype=np.uint64), 7, salts, 1 << 16)
        assert int(a[0]) != int(b[0])


class TestLogicalBitArray:
    def test_indices_shape_and_range(self, salts):
        lb = LogicalBitArray(3, 9, salts, 1 << 10)
        idx = lb.indices()
        assert idx.shape == (salts.size,)
        assert idx.min() >= 0 and idx.max() < 1 << 10

    def test_s_property(self, salts):
        assert LogicalBitArray(1, 2, salts, 64).s == salts.size

    def test_bit_for_rsu_reduces_logical_bit(self, salts):
        m_o, m_x = 1 << 12, 1 << 6
        lb = LogicalBitArray(7, 11, salts, m_o)
        bit = lb.bit_for_rsu(5, m_x)
        assert bit in (int(v) % m_x for v in lb.indices())

    def test_bit_for_rsu_deterministic(self, salts):
        lb = LogicalBitArray(7, 11, salts, 1 << 12)
        assert lb.bit_for_rsu(5, 64) == lb.bit_for_rsu(5, 64)

    def test_rejects_oversized_rsu_array(self, salts):
        lb = LogicalBitArray(7, 11, salts, 64)
        with pytest.raises(ConfigurationError):
            lb.bit_for_rsu(5, 128)

    def test_rejects_non_power_of_two(self, salts):
        lb = LogicalBitArray(7, 11, salts, 64)
        with pytest.raises(ConfigurationError):
            lb.bit_for_rsu(5, 48)

    def test_same_logical_bit_consistency(self, salts):
        """When the slots at two RSUs coincide, the reported indices are
        congruent (the collision the estimator counts)."""
        m_o = 1 << 12
        m_x, m_y = 1 << 6, 1 << 10
        found = False
        for vid in range(200):
            lb = LogicalBitArray(vid, 1000 + vid, salts, m_o)
            slot_a = int(salt_slot(vid, 1000 + vid, 1, salts.size))
            slot_b = int(salt_slot(vid, 1000 + vid, 2, salts.size))
            if slot_a == slot_b:
                found = True
                bit_x = lb.bit_for_rsu(1, m_x)
                bit_y = lb.bit_for_rsu(2, m_y)
                assert bit_y % m_x == bit_x
        assert found, "no slot collision in 200 vehicles (p < 1e-25)"

"""The rsu-outage chaos drill: scheduled silence against live services.

End-to-end path under test: the scenario's outage schedule
(:meth:`repro.scenarios.Scenario.rsu_outages`) drives the gateway's
admission-time drop switch mid-period, and the resulting live decode
must equal a degraded in-process golden **bit for bit** while pairs
away from the downed RSUs stay identical to the full-day golden.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scenarios import get_scenario
from repro.service.loadgen import _day_window_batches
from repro.service.outage import (
    OutageReport,
    _surviving_indices,
    first_outage_period,
    rsu_outage_scenario,
)
from repro.service.runtime import DeploymentSpec


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.fixture(scope="module")
def spec():
    return DeploymentSpec(
        total_trips=1_500, scenario="trajectory-replay", periods=6, seed=13
    )


class TestOutageSchedule:
    def test_trajectory_replay_schedules_day_five(self):
        scenario = get_scenario("trajectory-replay")
        assert first_outage_period(scenario) == 5
        # The weekly schedule repeats: day 12 is the next saturday.
        assert scenario.rsu_outages(12) == scenario.rsu_outages(5)

    def test_sioux_falls_schedules_nothing(self):
        scenario = get_scenario("sioux-falls")
        assert first_outage_period(scenario) is None
        assert scenario.rsu_outages(5) == frozenset()


class TestSurvivingIndices:
    def test_middle_slices_are_dropped(self, spec):
        full = spec.response_indices(3, period=5)
        surviving = _surviving_indices(
            spec, 3, period=5, windows=6, outage_lo=2, outage_hi=4
        )
        parts = np.array_split(full, 6)
        expected = np.concatenate(
            [parts[0], parts[1], parts[4], parts[5]]
        )
        assert np.array_equal(surviving, expected)
        assert surviving.size < full.size

    def test_total_outage_drops_everything(self, spec):
        surviving = _surviving_indices(
            spec, 3, period=5, windows=3, outage_lo=0, outage_hi=3
        )
        assert surviving.size == 0


class TestDayWindowBatches:
    def test_period_parameter_selects_the_day(self, spec):
        from repro.service import wire

        def flatten(phases):
            return b"".join(
                wire.encode_frame(frame)
                for phase in phases
                for frame in phase
            )

        day0 = _day_window_batches(spec, 4096, 3, period=0)
        day5 = _day_window_batches(spec, 4096, 3, period=5)
        assert len(day0) == len(day5) == 3
        # Different demand days produce different wire bytes.
        assert flatten(day0) != flatten(day5)
        # The same day is deterministic.
        assert flatten(_day_window_batches(spec, 4096, 3, period=5)) == (
            flatten(day5)
        )


class TestGuards:
    def test_too_few_windows(self, spec):
        with pytest.raises(ConfigurationError, match="3 delivery windows"):
            run(rsu_outage_scenario(spec, windows=2))

    def test_scenario_without_outages(self):
        quiet = DeploymentSpec(total_trips=300, scenario="sioux-falls")
        with pytest.raises(ConfigurationError, match="no RSU outages"):
            run(rsu_outage_scenario(quiet))

    def test_spec_too_short_for_the_schedule(self):
        short = DeploymentSpec(
            total_trips=300, scenario="trajectory-replay", periods=2
        )
        with pytest.raises(ConfigurationError, match="periods >= 6"):
            run(rsu_outage_scenario(short))

    def test_unknown_down_rsu_rejected(self, spec, monkeypatch):
        monkeypatch.setattr(
            type(spec.scenario_obj),
            "rsu_outages",
            lambda self, period: frozenset({9999}),
        )
        with pytest.raises(ConfigurationError, match="9999"):
            run(rsu_outage_scenario(spec))


class TestOutageDrill:
    @pytest.fixture(scope="class")
    def report(self):
        drill_spec = DeploymentSpec(
            total_trips=1_500,
            scenario="trajectory-replay",
            periods=6,
            seed=13,
        )
        return run(rsu_outage_scenario(drill_spec, windows=6))

    def test_drill_passes(self, report):
        assert isinstance(report, OutageReport)
        assert report.passed
        assert report.period == 5
        assert report.down == (3,)

    def test_drop_accounting_is_exact(self, report):
        assert report.responses_dropped == report.expected_dropped
        assert 0 < report.responses_dropped < report.responses_sent

    def test_bit_identity_checks(self, report):
        assert report.degraded_identical
        assert report.unaffected_identical
        assert report.pairs_affected > 0
        assert report.pairs_affected < report.pairs_compared

    def test_accuracy_delta_reported(self, report):
        assert report.delta_max >= report.delta_mean >= 0.0

    def test_render_carries_the_verdict(self, report):
        text = report.render()
        assert "PASS" in text
        assert f"day {report.period}" in text
        assert "bit-identical" in text

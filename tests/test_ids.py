"""Tests for one-time MAC addresses."""

import numpy as np
import pytest

from repro.vcps.ids import format_mac, is_locally_administered, random_mac


class TestRandomMac:
    def test_in_48_bit_range(self):
        for seed in range(20):
            mac = random_mac(seed)
            assert 0 <= mac < 1 << 48

    def test_locally_administered_unicast(self):
        for seed in range(50):
            assert is_locally_administered(random_mac(seed))

    def test_one_time_use_distribution(self):
        rng = np.random.default_rng(1)
        macs = {random_mac(rng) for _ in range(5_000)}
        # Collisions in 5k draws from ~2^46 space are essentially
        # impossible; near-uniqueness is what makes MACs unlinkable.
        assert len(macs) == 5_000


class TestIsLocallyAdministered:
    def test_vendor_mac_rejected(self):
        assert not is_locally_administered(0x00_1A_2B_3C_4D_5E)

    def test_multicast_rejected(self):
        assert not is_locally_administered(0x03_00_00_00_00_01)


class TestFormatMac:
    def test_format(self):
        assert format_mac(0x0A1B2C3D4E5F) == "0a:1b:2c:3d:4e:5f"

    def test_zero_padded(self):
        assert format_mac(1) == "00:00:00:00:00:01"

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            format_mac(1 << 48)
        with pytest.raises(ValueError):
            format_mac(-1)

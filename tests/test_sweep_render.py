"""Tests for the sweep result rendering (tables + ASCII scatter)."""

import pytest

from repro.experiments.sweep import run_accuracy_sweep

GRID = list(range(500, 5_001, 900))


@pytest.fixture(scope="module")
def result():
    return run_accuracy_sweep(
        "vlm", ratios=(1, 10), n_c_values=GRID, seed=77
    )


class TestRenderScatter:
    def test_scatter_per_ratio(self, result):
        for ratio in (1, 10):
            text = result.render_scatter(ratio)
            assert "VLM scheme" in text
            assert f"n_y = {ratio} n_x" in text
            assert "true n_c" in text

    def test_full_render_embeds_scatters(self, result):
        text = result.render()
        assert text.count("measured vs true n_c") == 2
        assert "mean |err| %" in text

    def test_series_metrics_consistent(self, result):
        series = result.series[1]
        assert series.true_n_c.size == len(GRID)
        assert series.rmse >= 0
        assert series.worst_abs_error >= series.mean_abs_error
        assert 0 <= series.scatter_rmse

    def test_unknown_ratio(self, result):
        with pytest.raises(KeyError):
            result.render_scatter(50)

"""Chaos suite: the live plane under deterministic injected faults.

The headline property is the issue's acceptance criterion — a Sioux
Falls day replayed through :class:`~repro.service.faults.FaultProxy`
relays injecting ≥10% frame drops, corruption, resets, and blackholes
must still decode to *exactly* the estimates the in-process
:class:`~repro.core.decoder.CentralDecoder` produces, with the loadgen
report showing the retries and dedups that made it so.

Every fault decision is seeded (see :mod:`repro.service.faults`), so a
failure here reproduces under the same profile seed.
"""

import asyncio

import pytest

from repro.service import wire
from repro.service.collector import CollectorService
from repro.service.faults import (
    PROFILES,
    FaultProfile,
    FaultProxy,
    _Lane,
    FaultStats,
)
from repro.service.gateway import RsuGateway
from repro.service.loadgen import run_loadgen
from repro.service.retry import RetryPolicy
from repro.service.runtime import DeploymentSpec, start_services
from repro.vcps.ids import random_mac
from repro.vcps.pki import CertificateAuthority
from repro.vcps.rsu import RoadsideUnit

import numpy as np


def run(coroutine):
    return asyncio.run(coroutine)


#: Fast backoff so chaos runs stay quick while still exercising retry.
FAST_POLICY = RetryPolicy(
    max_attempts=8, base_delay=0.02, multiplier=2.0, max_delay=0.2, jitter=0.1
)


@pytest.fixture(scope="module")
def spec():
    # Small but non-trivial: every node carries traffic, faults get
    # thousands of byte windows to hit.
    return DeploymentSpec(total_trips=800, seed=17)


# ----------------------------------------------------------------------
# Lane-level determinism: the scheme the whole suite rests on
# ----------------------------------------------------------------------
class TestLaneDeterminism:
    PROFILE = FaultProfile(seed=3, drop_rate=0.15, corrupt_rate=0.10)

    @staticmethod
    def _run_lane(profile, payload, chunks):
        lane = _Lane(profile, seed=99, stats=FaultStats())
        out = bytearray()
        pos = 0
        for size in chunks:
            piece, reset = lane.process(payload[pos : pos + size])
            out += piece
            pos += size
            if reset:
                break
        return bytes(out), lane.stats

    def test_chunking_does_not_change_the_outcome(self):
        payload = bytes(range(256)) * 64  # 16 KiB, 32 windows
        whole = self._run_lane(self.PROFILE, payload, [len(payload)])
        bytewise = self._run_lane(self.PROFILE, payload, [1] * len(payload))
        ragged = self._run_lane(
            self.PROFILE, payload, [7, 500, 513, 1, 1024, 15000]
        )
        assert whole == bytewise == ragged

    def test_reset_fires_at_the_same_byte_regardless_of_chunking(self):
        profile = FaultProfile(seed=3, reset_rate=0.10)
        payload = bytes(range(256)) * 64
        whole, whole_stats = self._run_lane(profile, payload, [len(payload)])
        bytewise, byte_stats = self._run_lane(
            profile, payload, [1] * len(payload)
        )
        assert whole_stats.resets == byte_stats.resets == 1
        # Both deliveries forward the identical pre-reset prefix.
        assert whole == bytewise

    def test_different_seeds_draw_different_fates(self):
        payload = bytes(64) * 512  # plenty of windows
        a = _Lane(self.PROFILE, seed=1, stats=FaultStats())
        b = _Lane(self.PROFILE, seed=2, stats=FaultStats())
        out_a, _ = a.process(payload)
        out_b, _ = b.process(payload)
        assert out_a != out_b or a.stats != b.stats

    def test_clean_profile_is_a_passthrough(self):
        payload = bytes(range(256)) * 16
        lane = _Lane(PROFILES["clean"], seed=0, stats=FaultStats())
        out, reset = lane.process(payload)
        assert out == payload
        assert reset is False
        assert lane.stats.faults_injected == 0


# ----------------------------------------------------------------------
# Clean proxy: frames relay untouched
# ----------------------------------------------------------------------
class TestCleanProxy:
    def test_roundtrip_through_clean_proxy(self, spec):
        async def body():
            gateway, collector = await start_services(
                spec, gateway_port=0, collector_port=0
            )
            proxy = FaultProxy(
                "127.0.0.1", gateway.port, PROFILES["clean"], name="clean"
            )
            await proxy.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", proxy.port
                )
                rsu_id = spec.scheme.rsu_ids[0]
                batch = wire.ResponseBatch(
                    rsu_id=rsu_id,
                    macs=np.array([random_mac(1)], dtype=np.uint64),
                    bit_indices=np.array([0], dtype=np.uint32),
                    seq=1,
                )
                await wire.write_message(writer, batch)
                ack = await asyncio.wait_for(
                    wire.read_message(reader), timeout=5
                )
                writer.close()
                await writer.wait_closed()
                return ack, proxy.stats
            finally:
                await proxy.stop()
                await gateway.stop()
                await collector.stop()

        ack, stats = run(body())
        assert isinstance(ack, wire.BatchAck)
        assert ack.seq == 1
        assert not ack.duplicate
        assert stats.faults_injected == 0
        assert stats.bytes_forwarded == stats.bytes_in


# ----------------------------------------------------------------------
# Full replay through fault proxies: the bit-identical guarantee
# ----------------------------------------------------------------------
async def _loadgen_under_faults(
    spec,
    ingress_profile,
    upload_profile,
    *,
    wire_batch=256,
    max_queries=60,
    ack_timeout=0.75,
    close_timeout=3.0,
):
    """Run the full loadgen with every path routed through a proxy.

    Ingress (loadgen→gateway), upload (gateway→collector), and the
    query path (loadgen→collector, reusing the upload proxy) all see
    injected faults.
    """
    gateway, collector = await start_services(
        spec,
        gateway_port=0,
        collector_port=0,
        upload_retry_policy=FAST_POLICY,
        upload_timeout=1.0,
    )
    ingress = FaultProxy(
        "127.0.0.1", gateway.port, ingress_profile, name="ingress"
    )
    upload = FaultProxy(
        "127.0.0.1", collector.port, upload_profile, name="upload"
    )
    await ingress.start()
    await upload.start()
    # Route the gateway's snapshot uploads through the fault proxy.
    gateway.collector_port = upload.port
    try:
        result = await run_loadgen(
            spec,
            gateway_port=ingress.port,
            collector_port=upload.port,
            wire_batch=wire_batch,
            max_queries=max_queries,
            ack_timeout=ack_timeout,
            close_timeout=close_timeout,
            retry_policy=FAST_POLICY,
        )
    finally:
        await ingress.stop()
        await upload.stop()
        await gateway.stop()
        await collector.stop()
    return result, gateway, collector, ingress, upload


@pytest.mark.slow
class TestChaosBitIdentical:
    def test_lossy_profile(self, spec):
        """≥10% window drops plus corruption on every path."""
        profile = PROFILES["lossy"]
        assert profile.drop_rate >= 0.10  # the acceptance floor
        result, gateway, collector, ingress, upload = run(
            _loadgen_under_faults(spec, profile, profile)
        )
        # Exactness first: every surviving answer matches in-process.
        assert result.bit_identical
        assert result.snapshots_acked == len(spec.scheme.rsu_ids)
        assert result.counter_mismatches == []
        assert result.mismatches == []
        assert result.estimates_checked > 0
        # The run was not secretly clean.
        assert ingress.stats.windows_dropped > 0
        assert ingress.stats.faults_injected > 0
        # And survival took actual retries/dedup, visible in the report.
        assert result.reconnects > 0
        assert result.batches_resent + result.dedup_acks + result.nacks > 0
        rendered = result.render()
        assert "reconnects" in rendered

    def test_flaky_profile_disconnects(self, spec):
        """Hard resets and blackholes mid-stream."""
        profile = FaultProfile(
            seed=11, drop_rate=0.05, reset_rate=0.03, blackhole_rate=0.01
        )
        result, gateway, collector, ingress, upload = run(
            _loadgen_under_faults(spec, profile, profile)
        )
        assert result.bit_identical
        assert result.snapshots_acked == len(spec.scheme.rsu_ids)
        assert ingress.stats.resets + ingress.stats.blackholes > 0
        assert result.reconnects > 0

    def test_slow_profile_stays_correct_and_complete(self, spec):
        """Latency, bandwidth cap, fragmented writes — no loss."""
        profile = FaultProfile(
            seed=5,
            latency=0.005,
            latency_jitter=0.003,
            bandwidth=2_000_000.0,
            max_chunk=512,
        )
        result, gateway, collector, ingress, upload = run(
            _loadgen_under_faults(
                spec, profile, profile, max_queries=20, ack_timeout=3.0
            )
        )
        assert result.bit_identical
        assert result.snapshots_acked == len(spec.scheme.rsu_ids)
        # Nothing was lost, so nothing needed resending.
        assert ingress.stats.windows_dropped == 0
        assert result.nacks == 0


# ----------------------------------------------------------------------
# Duplicate delivery: the regression the collector used to get wrong
# ----------------------------------------------------------------------
class TestDuplicateDelivery:
    def test_collector_dedups_reuploaded_snapshot(self, spec):
        """Re-uploading the same (rsu_id, period, seq) snapshot must be
        acked idempotently — the collector used to silently overwrite
        its state (double-observing the history)."""

        async def body():
            collector = CollectorService(spec.build_central_server())
            await collector.start(port=0)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", collector.port
                )
                reports = spec.reference_reports()
                rsu_id = spec.scheme.rsu_ids[0]
                snapshot = wire.Snapshot.from_report(
                    reports[rsu_id], seq=41
                )
                await wire.write_message(writer, snapshot)
                first = await wire.read_message(reader)
                volume_before = collector.server.point_volume(rsu_id)
                # The retransmission a gateway sends after a lost ack.
                await wire.write_message(writer, snapshot)
                second = await wire.read_message(reader)
                volume_after = collector.server.point_volume(rsu_id)
                # A *different* upload for the same key is refused.
                conflicting = wire.Snapshot.from_report(
                    reports[rsu_id], seq=42
                )
                await wire.write_message(writer, conflicting)
                refused = await wire.read_message(reader)
                writer.close()
                await writer.wait_closed()
                return (
                    first,
                    second,
                    refused,
                    volume_before,
                    volume_after,
                    collector,
                )
            finally:
                await collector.stop()

        first, second, refused, before, after, collector = run(body())
        assert isinstance(first, wire.SnapshotAck)
        assert first.seq == 41
        assert isinstance(second, wire.SnapshotAck)
        assert second.seq == 41
        assert before == after  # state untouched by the duplicate
        assert collector.snapshots_received == 1
        assert collector.snapshots_deduped == 1
        assert isinstance(refused, wire.ErrorMsg)
        assert refused.code == wire.E_DUPLICATE
        assert collector.snapshots_conflicted == 1

    def test_gateway_dedups_resent_batches(self):
        async def body():
            authority = CertificateAuthority(seed=5)
            rsus = {3: RoadsideUnit(3, 64, authority.issue(3))}
            gateway = RsuGateway(rsus, collector_port=1, flush_interval=0.01)
            await gateway.start(port=0)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.port
                )
                batch = wire.ResponseBatch(
                    rsu_id=3,
                    macs=np.array([random_mac(9)], dtype=np.uint64),
                    bit_indices=np.array([5], dtype=np.uint32),
                    seq=7,
                )
                await wire.write_message(writer, batch)
                first = await wire.read_message(reader)
                await wire.write_message(writer, batch)  # the resend
                second = await wire.read_message(reader)
                await asyncio.sleep(0.05)  # let the worker flush
                writer.close()
                await writer.wait_closed()
                return first, second, gateway, rsus[3]
            finally:
                await gateway.stop()

        first, second, gateway, rsu = run(body())
        assert isinstance(first, wire.BatchAck) and not first.duplicate
        assert isinstance(second, wire.BatchAck) and second.duplicate
        assert first.seq == second.seq == 7
        assert gateway.batches_deduped == 1
        assert rsu.counter == 1  # applied exactly once

    def test_seq_window_resets_when_the_period_closes(self):
        """Batch seqs are scoped to one period's stream.  A second
        day's replay against the same long-running gateway numbers its
        batches from 1 again — closing the period must reset the dedup
        window, or the whole next day gets silently swallowed."""

        async def body():
            authority = CertificateAuthority(seed=5)
            rsus = {3: RoadsideUnit(3, 64, authority.issue(3))}
            gateway = RsuGateway(
                rsus,
                collector_port=1,  # uploads fail; close still succeeds
                flush_interval=0.01,
                upload_timeout=0.1,
                retry_policy=RetryPolicy(
                    max_attempts=1, base_delay=0.01, jitter=0.0
                ),
            )
            await gateway.start(port=0)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.port
                )

                def batch(mac_seed):
                    return wire.ResponseBatch(
                        rsu_id=3,
                        macs=np.array([random_mac(mac_seed)], np.uint64),
                        bit_indices=np.array([5], dtype=np.uint32),
                        seq=1,
                    )

                await wire.write_message(writer, batch(9))
                day_one = await wire.read_message(reader)
                await wire.write_message(writer, wire.EndPeriod(period=0))
                await asyncio.wait_for(wire.read_message(reader), timeout=10)
                # Day two: same seq, different content — must apply.
                await wire.write_message(writer, batch(10))
                day_two = await wire.read_message(reader)
                await asyncio.sleep(0.05)  # let the worker flush
                writer.close()
                await writer.wait_closed()
                return day_one, day_two, gateway, rsus[3]
            finally:
                await gateway.stop()

        day_one, day_two, gateway, rsu = run(body())
        assert isinstance(day_one, wire.BatchAck) and not day_one.duplicate
        assert isinstance(day_two, wire.BatchAck) and not day_two.duplicate
        assert gateway.batches_deduped == 0
        assert rsu.counter == 1  # day two's response, after the reset

    def test_reclosing_a_period_does_not_reset_arrays(self):
        """A retried EndPeriod must not call rsu.end_period() twice —
        that would wipe the day's arrays before upload."""

        async def body():
            authority = CertificateAuthority(seed=5)
            rsus = {3: RoadsideUnit(3, 64, authority.issue(3))}
            server = None  # no collector: uploads fail, close still works
            del server
            gateway = RsuGateway(
                rsus,
                collector_port=1,
                upload_timeout=0.1,
                retry_policy=RetryPolicy(
                    max_attempts=1, base_delay=0.01, jitter=0.0
                ),
            )
            await gateway.start(port=0)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.port
                )
                await wire.write_message(
                    writer,
                    wire.ResponseMsg(rsu_id=3, mac=random_mac(4), bit_index=9),
                )
                await wire.write_message(writer, wire.EndPeriod(period=0))
                ack_a = await asyncio.wait_for(
                    wire.read_message(reader), timeout=10
                )
                await wire.write_message(writer, wire.EndPeriod(period=0))
                ack_b = await asyncio.wait_for(
                    wire.read_message(reader), timeout=10
                )
                writer.close()
                await writer.wait_closed()
                return ack_a, ack_b, gateway
            finally:
                await gateway.stop()

        ack_a, ack_b, gateway = run(body())
        assert isinstance(ack_a, wire.EndPeriodAck)
        assert isinstance(ack_b, wire.EndPeriodAck)
        assert gateway.periods_reclosed == 1
        # One snapshot cached with one stable seq; the re-close reused
        # it rather than snapshotting an already-reset array.
        snapshots = gateway._period_uploads[0]
        assert len(snapshots) == 1
        assert snapshots[3].counter == 1


# ----------------------------------------------------------------------
# Metrics reconciliation: injected faults match observed metrics
# ----------------------------------------------------------------------
class TestChaosMetricsReconcile:
    """The issue's acceptance criterion: a fault-profile replay must
    produce metrics that reconcile *exactly* with the injected faults.

    A reset-only ingress profile makes the accounting closed-form:
    every injected reset kills the streaming connection exactly once,
    and with a generous ack timeout and a clean query/upload path no
    other event causes a reconnect — so the loadgen's observed
    reconnect counter must equal the proxy's injected reset counter.
    """

    def test_injected_resets_equal_observed_reconnects(self, spec):
        profile = FaultProfile(seed=29, reset_rate=0.02)
        clean = FaultProfile(seed=0)
        result, gateway, collector, ingress, upload = run(
            _loadgen_under_faults(
                spec,
                profile,
                clean,
                max_queries=20,
                ack_timeout=5.0,
            )
        )
        assert result.bit_identical
        # The run was not secretly clean, and resets were the ONLY
        # fault class injected.
        assert ingress.stats.resets > 0
        assert ingress.stats.faults_injected == ingress.stats.resets
        # Exact reconciliation, via both the report and the registry.
        assert result.reconnects == ingress.stats.resets
        assert (
            int(result.registry.value("loadgen.reconnects_total"))
            == ingress.stats.resets
        )
        # The clean query path contributed no reconnects.
        assert result.registry.value("loadgen.query_reconnects_total") == 0

    def test_response_counters_reconcile_across_the_plane(self, spec):
        """Every response the loadgen got acked was received and
        recorded by the gateway exactly once, resets notwithstanding."""
        profile = FaultProfile(seed=29, reset_rate=0.02)
        clean = FaultProfile(seed=0)
        result, gateway, collector, ingress, upload = run(
            _loadgen_under_faults(
                spec,
                profile,
                clean,
                max_queries=10,
                ack_timeout=5.0,
            )
        )
        assert result.bit_identical
        sent = int(result.registry.value("loadgen.responses_sent_total"))
        total_passes = sum(
            len(spec.response_indices(rsu_id))
            for rsu_id in spec.scheme.rsu_ids
        )
        # Dedup means resent batches count once on both sides.
        assert sent == total_passes
        assert gateway.responses_received == sent
        assert gateway.responses_recorded == sent
        # Clean upload path: each RSU's snapshot uploaded and stored
        # exactly once.
        assert upload.stats.faults_injected == 0
        assert gateway.snapshots_uploaded == len(spec.scheme.rsu_ids)
        assert collector.snapshots_received == len(spec.scheme.rsu_ids)
        assert collector.snapshots_deduped == 0
        # Gateway-side dedup can exceed the loadgen's observed dedup
        # acks (a duplicate ack lost to a reset triggers yet another
        # resend), but never the other way around.
        assert gateway.batches_deduped >= result.dedup_acks

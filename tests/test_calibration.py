"""Tests for the Fig. 2 n_c-fraction calibration experiment."""

import pytest

from repro.experiments.calibration import PAPER_READINGS, run_calibration


@pytest.fixture(scope="module")
def result():
    return run_calibration(fractions=(0.05, 0.1, 0.2))


class TestRunCalibration:
    def test_default_fraction_wins(self, result):
        """0.1 must be the simultaneous best fit — it is the library
        default (DESIGN.md substitution #5)."""
        assert result.best_fraction == pytest.approx(0.1)

    def test_scores_cover_all_fractions(self, result):
        assert set(result.scores) == {0.05, 0.1, 0.2}
        assert all(score >= 0 for score in result.scores.values())

    def test_best_fit_is_decisive(self, result):
        best = result.scores[result.best_fraction]
        others = [
            score for fraction, score in result.scores.items()
            if fraction != result.best_fraction
        ]
        assert all(best < other / 2 for other in others)

    def test_readings_shape(self, result):
        for values in result.readings.values():
            assert len(values) == len(PAPER_READINGS)

    def test_best_fraction_matches_paper_readings(self, result):
        values = result.readings[0.1]
        targets = [target for _, target in PAPER_READINGS]
        for value, target in zip(values[:4], targets[:4]):
            assert value == pytest.approx(target, rel=0.20)

    def test_render(self, result):
        text = result.render()
        assert "Calibration" in text
        assert "best simultaneous fit" in text

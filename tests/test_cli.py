"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.experiment == "table1"
        assert not args.quick

    def test_all_registered_experiments_parse(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            assert parser.parse_args([name]).experiment == name

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["bogus"])

    def test_flags(self, tmp_path):
        args = build_parser().parse_args(
            ["fig2", "--quick", "--json", str(tmp_path / "out.json")]
        )
        assert args.quick
        assert args.json.name == "out.json"


class TestMain:
    def test_fig2_quick(self, capsys):
        assert main(["fig2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "finished in" in out

    def test_ablations_quick_with_json(self, capsys, tmp_path):
        path = tmp_path / "results.json"
        assert main(["ablations", "--quick", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert "ablations" in payload
        assert payload["ablations"]["rows"]

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.experiment == "table1"
        assert not args.quick

    def test_all_registered_experiments_parse(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            assert parser.parse_args([name]).experiment == name

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["bogus"])

    def test_flags(self, tmp_path):
        args = build_parser().parse_args(
            ["fig2", "--quick", "--json", str(tmp_path / "out.json")]
        )
        assert args.quick
        assert args.json.name == "out.json"


class TestMain:
    def test_fig2_quick(self, capsys):
        assert main(["fig2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "finished in" in out

    def test_ablations_quick_with_json(self, capsys, tmp_path):
        path = tmp_path / "results.json"
        assert main(["ablations", "--quick", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert "ablations" in payload
        assert payload["ablations"]["rows"]


class TestChaosParser:
    def test_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.experiment == "chaos"
        assert args.profile == "lossy"
        assert args.listen_port == 9701
        assert args.upstream_port == 8701
        assert args.seed is None  # profile default unless overridden

    def test_profile_and_overrides(self):
        args = build_parser().parse_args(
            [
                "chaos",
                "--profile",
                "flaky",
                "--seed",
                "42",
                "--drop-rate",
                "0.2",
                "--upstream-port",
                "8702",
            ]
        )
        assert args.profile == "flaky"
        assert args.seed == 42
        assert args.drop_rate == pytest.approx(0.2)
        assert args.upstream_port == 8702

    def test_overrides_build_the_right_profile(self):
        from repro.service.faults import PROFILES, profile_from_args

        args = build_parser().parse_args(
            ["chaos", "--profile", "lossy", "--seed", "7", "--latency", "0.5"]
        )
        profile = profile_from_args(
            args.profile, seed=args.seed, latency=args.latency
        )
        assert profile.seed == 7
        assert profile.latency == pytest.approx(0.5)
        # Unspecified fields keep the named profile's values.
        assert profile.drop_rate == PROFILES["lossy"].drop_rate

    def test_unknown_profile_is_a_configuration_error(self):
        from repro.errors import ConfigurationError
        from repro.service.faults import profile_from_args

        with pytest.raises(ConfigurationError):
            profile_from_args("mystery")


class TestFederationParser:
    def test_serve_shard_flags(self, tmp_path):
        args = build_parser().parse_args(
            [
                "serve",
                "--shards", "3",
                "--wal", str(tmp_path / "log.wal"),
                "--retention", "4",
            ]
        )
        assert args.shards == 3
        assert args.wal.name == "log.wal"
        assert args.retention == 4

    def test_serve_defaults_to_unsharded(self):
        args = build_parser().parse_args(["serve"])
        assert args.shards == 0
        assert args.wal is None

    def test_loadgen_shard_flags(self):
        args = build_parser().parse_args(
            ["loadgen", "--shards", "3", "--rebalance", "2"]
        )
        assert args.shards == 3
        assert args.rebalance == 2

    def test_federation_status_requires_metrics_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["federation", "status"])
        args = build_parser().parse_args(
            ["federation", "status", "--metrics-port", "9640"]
        )
        assert args.experiment == "federation"
        assert args.metrics_port == 9640

    def test_chaos_shard_kill_flags(self, tmp_path):
        args = build_parser().parse_args(
            [
                "chaos",
                "--profile", "shard-kill",
                "--shards", "4",
                "--kill-shard", "2",
                "--trips", "900",
                "--matrix-out", str(tmp_path / "m.json"),
                "--golden-out", str(tmp_path / "g.json"),
            ]
        )
        assert args.profile == "shard-kill"
        assert args.shards == 4
        assert args.kill_shard == 2
        assert args.trips == 900

    def test_metrics_accepts_multiple_paths(self):
        args = build_parser().parse_args(
            ["metrics", "summarize", "a.jsonl", "b.jsonl"]
        )
        assert [p.name for p in args.paths] == ["a.jsonl", "b.jsonl"]


class TestStreamingParser:
    def test_matrix_live_flag(self):
        args = build_parser().parse_args(["matrix", "--live"])
        assert args.experiment == "matrix"
        assert args.live
        assert args.window is None
        assert args.windows == 4

    def test_matrix_window_implies_live_dispatch(self):
        args = build_parser().parse_args(
            ["matrix", "--window", "2", "--windows", "8"]
        )
        assert not args.live  # --window alone routes to the live path
        assert args.window == 2
        assert args.windows == 8

    def test_matrix_defaults_stay_batch(self):
        args = build_parser().parse_args(["matrix"])
        assert not args.live
        assert args.window is None

    def test_serve_window_flag(self):
        args = build_parser().parse_args(["serve", "--window", "4"])
        assert args.window == 4
        assert build_parser().parse_args(["serve"]).window == 0

    def test_loadgen_window_flag(self):
        args = build_parser().parse_args(["loadgen", "--window", "6"])
        assert args.window == 6

    def test_loadgen_window_with_shards_refused(self, capsys):
        assert main(["loadgen", "--shards", "2", "--window", "2"]) == 2
        assert "not supported together" in capsys.readouterr().err

    def test_matrix_live_quick_end_to_end(self, capsys, tmp_path):
        path = tmp_path / "live.json"
        assert main(
            ["matrix", "--live", "--quick", "--json", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out
        payload = json.loads(path.read_text())
        assert payload["matrix_live"]["bit_identical"] is True
        assert payload["matrix_live"]["prefix_identical"] is True

    def test_matrix_window_slice_end_to_end(self, capsys):
        assert main(["matrix", "--window", "1", "--quick"]) == 0
        assert "top pairs of window 1" in capsys.readouterr().out

"""Unit tests for repro.utils.serialization."""

from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro.utils.serialization import dump_json, load_json, to_jsonable


@dataclass
class Sample:
    name: str
    values: np.ndarray


class TestToJsonable:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "x"):
            assert to_jsonable(value) == value

    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float64(2.5)) == 2.5

    def test_numpy_array(self):
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_dataclass(self):
        out = to_jsonable(Sample(name="s", values=np.array([1.5])))
        assert out == {"name": "s", "values": [1.5]}

    def test_nested_containers(self):
        out = to_jsonable({"a": (1, 2), "b": {3}})
        assert out["a"] == [1, 2]
        assert out["b"] == [3]

    def test_path(self):
        assert to_jsonable(Path("/tmp/x")) == "/tmp/x"

    def test_unserializable_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestRoundTrip:
    def test_dump_and_load(self, tmp_path):
        payload = {"rows": [1, 2, 3], "meta": {"seed": 7}}
        path = dump_json(payload, tmp_path / "sub" / "out.json")
        assert path.exists()
        assert load_json(path) == payload

"""Property tests: shard partials form a state-based CRDT.

The federation's correctness argument rests on two algebraic facts,
checked here with Hypothesis rather than hand-picked examples:

* word-wise OR over bit arrays is commutative, associative and
  idempotent, and disjoint partial counters are additive — so
  :func:`~repro.federation.collector.merge_partial_reports` reaches the
  same state regardless of delivery order or duplication;
* **any** partition of a period's responses across any number of
  shards OR-merges to the bit-identical unsharded array, so the
  decoded estimate matrix cannot depend on the sharding.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitarray import BitArray
from repro.core.reports import RsuReport
from repro.vcps.ids import random_macs
from repro.vcps.pki import CertificateAuthority
from repro.vcps.rsu import RoadsideUnit

ARRAY_BITS = 256

AUTHORITY = CertificateAuthority(seed=7)


def make_rsu():
    return RoadsideUnit(1, ARRAY_BITS, AUTHORITY.issue(1))


def make_partial(bits_on, counter):
    """An RsuReport whose array has exactly the given bits set."""
    array = BitArray(ARRAY_BITS)
    array.set_bits(sorted(bits_on))
    return RsuReport(rsu_id=1, counter=counter, bits=array, period=0)


partials = st.lists(
    st.builds(
        make_partial,
        st.sets(st.integers(0, ARRAY_BITS - 1), max_size=40),
        st.integers(0, 1_000),
    ),
    min_size=1,
    max_size=6,
)


def merged_key(report):
    return (report.counter, report.bits.to_bytes())


class TestOrMergeLaws:
    @given(partials)
    @settings(max_examples=60, deadline=None)
    def test_commutative(self, reports):
        from repro.federation import merge_partial_reports

        forward = merge_partial_reports(reports)
        backward = merge_partial_reports(list(reversed(reports)))
        assert merged_key(forward) == merged_key(backward)

    @given(partials, partials)
    @settings(max_examples=60, deadline=None)
    def test_associative(self, left, right):
        from repro.federation import merge_partial_reports

        stepwise = merge_partial_reports(
            [merge_partial_reports(left), merge_partial_reports(right)]
        )
        flat = merge_partial_reports(left + right)
        assert merged_key(stepwise) == merged_key(flat)

    @given(partials)
    @settings(max_examples=60, deadline=None)
    def test_bits_idempotent(self, reports):
        """Re-merging an already-merged array changes no bits.  (The
        counter is deliberately NOT idempotent — the wire layer dedups
        on (shard, seq) so each partial's counter is added once.)"""
        from repro.federation import merge_partial_reports

        once = merge_partial_reports(reports)
        replay = make_partial((), 0)
        replay.bits |= once.bits
        again = merge_partial_reports([once, replay])
        assert again.bits.to_bytes() == once.bits.to_bytes()
        assert again.bits.count_ones() == once.bits.count_ones()

    @given(partials)
    @settings(max_examples=60, deadline=None)
    def test_counter_is_additive(self, reports):
        from repro.federation import merge_partial_reports

        merged = merge_partial_reports(reports)
        assert merged.counter == sum(r.counter for r in reports)


class TestPartitionInvariance:
    """Splitting one RSU's day across shards decodes identically."""

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=5),
        st.lists(
            st.integers(min_value=0, max_value=4),
            min_size=0,
            max_size=120,
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_partition_matches_unsharded(
        self, seed, shard_count, assignment
    ):
        from repro.federation import merge_partial_reports

        count = len(assignment)
        macs = random_macs(count, seed=seed)
        rng = np.random.default_rng(seed)
        indices = rng.integers(0, ARRAY_BITS, size=count)
        owners = np.asarray(assignment, dtype=np.int64) % shard_count

        # Unsharded golden: one RSU sees every response.
        golden = make_rsu()
        golden.handle_index_batch(macs, indices)
        golden_report = golden.end_period()

        # Sharded: responses partitioned by the arbitrary assignment,
        # each shard owning an independent zeroed replica.
        replicas = [make_rsu() for _ in range(shard_count)]
        for shard, replica in enumerate(replicas):
            mine = owners == shard
            replica.handle_index_batch(macs[mine], indices[mine])
        merged = merge_partial_reports(
            [replica.end_period() for replica in replicas]
        )

        assert merged.bits.to_bytes() == golden_report.bits.to_bytes()
        assert merged.counter == golden_report.counter
        assert (
            merged.bits.count_ones() == golden_report.bits.count_ones()
        )

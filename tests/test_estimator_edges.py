"""Estimator behavior at the edges of its parameter space."""

import math

import numpy as np
import pytest

from repro.core.encoder import encode_passes
from repro.core.estimator import (
    ZeroFractionPolicy,
    estimate_intersection,
    q_intersection,
)
from repro.core.parameters import SchemeParameters
from repro.core.reports import RsuReport
from repro.core.bitarray import BitArray
from repro.traffic.random_workload import make_pair_population


class TestEmptyTraffic:
    def test_both_rsus_idle(self):
        """Two idle RSUs: estimate is exactly zero (all arrays empty)."""
        rx = RsuReport(1, 0, BitArray(64))
        ry = RsuReport(2, 0, BitArray(256))
        estimate = estimate_intersection(rx, ry, 2)
        assert estimate.value == pytest.approx(0.0, abs=1e-9)

    def test_one_rsu_idle(self):
        params = SchemeParameters(s=2, load_factor=1.0, m_o=256, hash_seed=1)
        pop = make_pair_population(50, 0, 0, seed=1)
        ids, keys = pop.passes_at_x()
        rx = encode_passes(ids, keys, 1, 64, params)
        ry = RsuReport(2, 0, BitArray(256))
        estimate = estimate_intersection(rx, ry, 2)
        # No traffic at y: V_c = V_x^u-fraction exactly, so n_c = 0.
        assert estimate.value == pytest.approx(0.0, abs=1e-9)


class TestDisjointPopulations:
    def test_unbiased_around_zero(self):
        """Disjoint populations: mean estimate near zero (can be
        slightly negative per run)."""
        values = []
        for seed in range(10):
            params = SchemeParameters(
                s=2, load_factor=1.0, m_o=1 << 14, hash_seed=seed
            )
            pop = make_pair_population(2_000, 8_000, 0, seed=seed)
            rx = encode_passes(*pop.passes_at_x(), 1, 1 << 12, params)
            ry = encode_passes(*pop.passes_at_y(), 2, 1 << 14, params)
            values.append(estimate_intersection(rx, ry, 2).value)
        mean = float(np.mean(values))
        spread = float(np.std(values))
        assert abs(mean) < max(3 * spread / math.sqrt(10), 30)


class TestFullOverlap:
    def test_identical_populations(self):
        params = SchemeParameters(s=2, load_factor=1.0, m_o=1 << 14, hash_seed=3)
        pop = make_pair_population(3_000, 3_000, 3_000, seed=3)
        rx = encode_passes(*pop.passes_at_x(), 1, 1 << 13, params)
        ry = encode_passes(*pop.passes_at_y(), 2, 1 << 14, params)
        estimate = estimate_intersection(rx, ry, 2)
        assert estimate.error_ratio(3_000) < 0.20


class TestExtremeShapes:
    def test_minimum_viable_arrays(self):
        """m = 4 with a couple of vehicles still produces a finite
        estimate under CLAMP."""
        params = SchemeParameters(s=2, load_factor=1.0, m_o=4, hash_seed=5)
        ids = np.arange(2, dtype=np.uint64)
        keys = ids + np.uint64(9)
        rx = encode_passes(ids, keys, 1, 4, params)
        ry = encode_passes(ids, keys, 2, 4, params)
        estimate = estimate_intersection(
            rx, ry, 2, policy=ZeroFractionPolicy.CLAMP
        )
        assert math.isfinite(estimate.value)

    def test_extreme_size_ratio(self):
        """m_y / m_x = 4096: unfolding still exact, estimate finite and
        sane."""
        params = SchemeParameters(s=2, load_factor=1.0, m_o=1 << 18, hash_seed=6)
        pop = make_pair_population(20, 80_000, 10, seed=6)
        rx = encode_passes(*pop.passes_at_x(), 1, 1 << 6, params)
        ry = encode_passes(*pop.passes_at_y(), 2, 1 << 18, params)
        estimate = estimate_intersection(
            rx, ry, 2, policy=ZeroFractionPolicy.CLAMP
        )
        assert math.isfinite(estimate.value)
        assert estimate.m_x == 1 << 6

    def test_large_s(self):
        """s close to m_x: still defined as long as s < m_y."""
        params = SchemeParameters(s=50, load_factor=1.0, m_o=1 << 12, hash_seed=7)
        pop = make_pair_population(500, 500, 100, seed=7)
        rx = encode_passes(*pop.passes_at_x(), 1, 1 << 10, params)
        ry = encode_passes(*pop.passes_at_y(), 2, 1 << 12, params)
        estimate = estimate_intersection(
            rx, ry, 50, policy=ZeroFractionPolicy.CLAMP
        )
        assert math.isfinite(estimate.value)


class TestModelEdgeValues:
    def test_q_at_full_overlap_monotone_in_s(self):
        """More logical bits -> fewer collisions -> q closer to the
        independent product."""
        qs = [
            float(q_intersection(1_000, 1_000, 1_000, 4_096, 4_096, s))
            for s in (2, 5, 10, 100)
        ]
        independent = float(q_intersection(1_000, 1_000, 0, 4_096, 4_096, 2))
        assert all(a > b for a, b in zip(qs, qs[1:]))
        assert qs[-1] > independent  # still above the no-overlap floor

"""Tests for the Section V accuracy-analysis experiment."""

import pytest

from repro.experiments.accuracy_analysis import run_accuracy_analysis


@pytest.fixture(scope="module")
def result():
    configs = (
        (2_000, 2_000, 600, 2),
        (2_000, 20_000, 600, 2),
    )
    return run_accuracy_analysis(configs=configs, repetitions=25, seed=4)


class TestRunAccuracyAnalysis:
    def test_case_count(self, result):
        assert len(result.cases) == 2

    def test_sizes_follow_rule(self, result):
        case = result.cases[1]
        assert case.m_x == 8_192      # 2^ceil(log2(2000*3))
        assert case.m_y == 65_536     # 2^ceil(log2(20000*3))

    def test_closed_forms_match_mc(self, result):
        for case in result.cases:
            assert case.mc_stddev == pytest.approx(case.closed_stddev, rel=0.5)
            noise = case.mc_stddev / (result.repetitions**0.5)
            assert abs(case.mc_bias - case.closed_bias) < 5 * noise

    def test_unequal_pair_noisier(self, result):
        assert result.cases[1].closed_stddev > result.cases[0].closed_stddev

    def test_render(self, result):
        text = result.render()
        assert "Section V" in text
        assert "std % (MC)" in text

"""Tests for the Fig. 1 diagram runner and the Fig. 3 ASCII map."""

import pytest

from repro.errors import ConfigurationError, NetworkDataError
from repro.experiments.figure1 import run_figure1
from repro.roadnet.generators import grid_network
from repro.roadnet.layout import SIOUX_FALLS_COORDINATES, ascii_map
from repro.roadnet.sioux_falls import sioux_falls_network


class TestFigure1:
    def test_default_example(self):
        result = run_figure1()
        assert result.b_x.size == 4
        assert result.b_y.size == 8
        # Eq. 3: unfolded content duplicates B_x.
        for i in range(8):
            assert result.b_x_unfolded[i] == result.b_x[i % 4]
        # Eq. 4: OR.
        for i in range(8):
            assert result.b_c[i] == (result.b_x_unfolded[i] | result.b_y[i])

    def test_custom_bits(self):
        result = run_figure1(x_bits=[0], y_bits=[7], m_x=2, m_y=8)
        assert result.b_c.count_ones() == 5  # 0,2,4,6 from unfold + 7

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            run_figure1(m_x=3, m_y=8)

    def test_render(self):
        text = run_figure1().render()
        assert "Figure 1" in text
        assert "B_x^u" in text
        assert "zero fractions" in text


class TestFigure3Map:
    def test_sioux_falls_map_contains_every_node(self):
        text = ascii_map(sioux_falls_network())
        for node in range(1, 25):
            assert str(node) in text

    def test_coordinates_cover_all_nodes(self):
        assert set(SIOUX_FALLS_COORDINATES) == set(range(1, 25))

    def test_streets_drawn(self):
        text = ascii_map(sioux_falls_network())
        assert "-" in text and "|" in text

    def test_generic_network_uses_spring_layout(self):
        text = ascii_map(grid_network(3, 3))
        assert "grid-3x3" in text

    def test_explicit_coordinates(self):
        network = grid_network(2, 2)
        coords = {1: (0, 0), 2: (1, 0), 3: (0, 1), 4: (1, 1)}
        text = ascii_map(network, coordinates=coords)
        assert "4" in text

    def test_missing_coordinates_rejected(self):
        with pytest.raises(NetworkDataError):
            ascii_map(grid_network(2, 2), coordinates={1: (0, 0)})

    def test_size_validation(self):
        with pytest.raises(NetworkDataError):
            ascii_map(sioux_falls_network(), width=5)


class TestCliIntegration:
    def test_fig1_and_fig3_via_cli(self, capsys):
        from repro.cli import main

        assert main(["fig1", "--quick"]) == 0
        assert main(["fig3", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "sioux-falls" in out

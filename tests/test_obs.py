"""Observability layer: registry determinism, exporters, tracing,
scrape endpoint, and the instrumented retry loop.

The golden-file tests pin the exporter formats byte for byte: a
deterministic registry (fake clock, fixed operations) must render to
exactly ``tests/data/metrics_golden.prom`` /
``tests/data/metrics_golden.jsonl``.  Regenerate with::

    PYTHONPATH=src python tests/data/regen_metrics_golden.py
"""

import asyncio
import io
import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, RetryExhaustedError
from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    MetricsServer,
    Tracer,
    aggregate_rows,
    get_registry,
    metric_rows,
    read_jsonl,
    render_prometheus,
    render_summary,
    use_registry,
    write_jsonl,
)
from repro.service.retry import RetryPolicy, retry_async

DATA_DIR = Path(__file__).parent / "data"


class FakeClock:
    """A monotonic clock advanced by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def golden_registry(clock=None) -> MetricsRegistry:
    """The fixed workload both golden files are rendered from."""
    clock = clock if clock is not None else FakeClock()
    registry = MetricsRegistry(clock=clock)
    registry.counter("gateway.responses_received_total").inc(4096)
    registry.counter("wire.frames_total", direction="in").inc(7)
    registry.counter("wire.frames_total", direction="out").inc(9)
    registry.gauge("gateway.queue_depth").set(3)
    with registry.timer("gateway.ingest_flush_seconds"):
        clock.advance(0.002)
    with registry.timer("gateway.ingest_flush_seconds"):
        clock.advance(0.04)
    registry.histogram("gateway.period_close_seconds").observe(100.0)
    return registry


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_accumulates_and_rejects_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b_total")
        counter.inc()
        counter.inc(2.5)
        assert registry.value("a.b_total") == 3.5
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_instruments_are_keyed_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", direction="in")
        b = registry.counter("x_total", direction="out")
        assert a is not b
        # Same labels in any kwarg order resolve to the same instrument.
        c = registry.counter("y_total", b="2", a="1")
        d = registry.counter("y_total", a="1", b="2")
        assert c is d

    def test_type_collision_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("clash")
        with pytest.raises(ConfigurationError):
            registry.gauge("clash")

    def test_histogram_buckets_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("bad_seconds", buckets=(1.0, 1.0, 2.0))

    def test_histogram_placement_and_overflow(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.01, 0.05, 0.5, 99.0):
            hist.observe(value)
        snap = hist.snapshot()
        # bisect_left: a value equal to a boundary lands in its bucket.
        assert snap["buckets"] == [[0.01, 2], [0.1, 1], [1.0, 1]]
        assert snap["overflow"] == 1
        assert snap["count"] == 5

    def test_value_of_untouched_metric_is_zero(self):
        assert MetricsRegistry().value("never_touched") == 0.0

    def test_snapshot_is_deterministic_under_a_fake_clock(self):
        """Two registries driven through the identical operations on
        identical fake clocks produce byte-identical snapshots."""
        snaps = [golden_registry().snapshot() for _ in range(2)]
        assert json.dumps(snaps[0], sort_keys=True) == json.dumps(
            snaps[1], sort_keys=True
        )

    def test_timer_records_on_the_injected_clock(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        with registry.timer("t_seconds"):
            clock.advance(0.75)
        snap = registry.histogram("t_seconds").snapshot()
        assert snap["sum"] == 0.75
        assert snap["count"] == 1

    def test_use_registry_swaps_and_restores_the_default(self):
        before = get_registry()
        with use_registry() as scratch:
            assert get_registry() is scratch
            assert scratch is not before
        assert get_registry() is before


# ----------------------------------------------------------------------
# Exporters (golden files)
# ----------------------------------------------------------------------
class TestExporters:
    def test_prometheus_golden(self):
        rendered = render_prometheus(golden_registry())
        golden = (DATA_DIR / "metrics_golden.prom").read_text()
        assert rendered == golden

    def test_jsonl_golden(self):
        stream = io.StringIO()
        count = write_jsonl(golden_registry(), stream)
        golden = (DATA_DIR / "metrics_golden.jsonl").read_text()
        assert stream.getvalue() == golden
        assert count == len(golden.splitlines())

    def test_jsonl_roundtrip(self):
        registry = golden_registry()
        stream = io.StringIO()
        write_jsonl(registry, stream)
        stream.seek(0)
        assert read_jsonl(stream) == registry.snapshot()

    def test_histogram_export_is_cumulative_with_inf(self):
        text = render_prometheus(golden_registry())
        lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_gateway_period_close_seconds_bucket")
        ]
        # 100s observation overflows every finite bucket: all finite
        # cumulative counts are 0 and only +Inf reaches 1.
        assert len(lines) == len(DEFAULT_BUCKETS) + 1
        assert all(line.endswith(" 0") for line in lines[:-1])
        assert lines[-1] == (
            'repro_gateway_period_close_seconds_bucket{le="+Inf"} 1'
        )

    def test_summary_renders_every_row(self):
        rows = metric_rows(golden_registry())
        text = render_summary(rows, title="golden")
        assert "golden" in text
        for row in rows:
            assert str(row["name"]) in text


# ----------------------------------------------------------------------
# Aggregation across snapshots (``repro metrics summarize a.jsonl b.jsonl``)
# ----------------------------------------------------------------------
class TestAggregateRows:
    def test_counters_and_gauges_sum_per_label_set(self):
        rows = aggregate_rows(
            metric_rows(golden_registry()) + metric_rows(golden_registry())
        )
        by_key = {
            (row["name"], tuple(sorted((row.get("labels") or {}).items()))): row
            for row in rows
        }
        assert (
            by_key[("gateway.responses_received_total", ())]["value"]
            == 8192
        )
        assert (
            by_key[("wire.frames_total", (("direction", "in"),))]["value"]
            == 14
        )
        # Distinct label sets stay distinct.
        assert (
            by_key[("wire.frames_total", (("direction", "out"),))]["value"]
            == 18
        )
        assert by_key[("gateway.queue_depth", ())]["value"] == 6

    def test_histograms_merge_buckets_sum_count_overflow(self):
        rows = aggregate_rows(
            metric_rows(golden_registry()) + metric_rows(golden_registry())
        )
        histogram = next(
            row
            for row in rows
            if row["name"] == "gateway.period_close_seconds"
        )
        assert histogram["overflow"] == 2
        assert histogram["sum"] == 200.0
        flush = next(
            row
            for row in rows
            if row["name"] == "gateway.ingest_flush_seconds"
        )
        assert flush["count"] == 4
        assert sum(count for _, count in flush["buckets"]) == 4

    def test_single_snapshot_is_unchanged_but_ordered(self):
        rows = metric_rows(golden_registry())
        assert aggregate_rows(rows) == sorted(
            (dict(row) for row in rows),
            key=lambda r: (
                str(r["name"]),
                tuple(
                    sorted(
                        (str(k), str(v))
                        for k, v in (r.get("labels") or {}).items()
                    )
                ),
                str(r["type"]),
            ),
        )

    def test_boundary_mismatch_raises(self):
        left = MetricsRegistry()
        left.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        right = MetricsRegistry()
        right.histogram("h", buckets=(1.0, 4.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket boundaries"):
            aggregate_rows(metric_rows(left) + metric_rows(right))

    def test_does_not_mutate_input_rows(self):
        rows = metric_rows(golden_registry())
        snapshot = json.dumps(rows, sort_keys=True)
        aggregate_rows(rows + metric_rows(golden_registry()))
        assert json.dumps(rows, sort_keys=True) == snapshot


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTracing:
    def test_spans_nest_and_time_on_the_registry_clock(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        tracer = Tracer(registry)
        with tracer.span("decode.unfold", rsu=7) as outer:
            clock.advance(0.5)
            with tracer.span("decode.estimate") as inner:
                clock.advance(0.25)
                assert inner.parent is outer
                assert inner.depth == 1
        assert outer.duration == 0.75
        assert inner.duration == 0.25
        assert tracer.current is None

    def test_span_durations_land_in_a_histogram(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        tracer = Tracer(registry)
        with tracer.span("decode.unfold"):
            clock.advance(0.001)
        snap = registry.histogram("decode.unfold.seconds").snapshot()
        assert snap["count"] == 1
        assert snap["sum"] == 0.001


# ----------------------------------------------------------------------
# Scrape endpoint
# ----------------------------------------------------------------------
class TestScrape:
    @staticmethod
    async def _get(port, path):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode())
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        head, _, body = raw.decode().partition("\r\n\r\n")
        return int(head.split()[1]), body

    def test_serves_merged_registries(self):
        async def body():
            named = MetricsRegistry()
            named.counter("gateway.responses_received_total").inc(5)
            server = MetricsServer({"gateway": named})
            await server.start()
            try:
                with use_registry() as default:
                    default.counter("wire.frames_total", direction="in").inc()
                    return await self._get(server.port, "/metrics")
            finally:
                await server.stop()

        status, text = asyncio.run(body())
        assert status == 200
        assert "repro_gateway_responses_received_total 5" in text
        assert 'repro_wire_frames_total{direction="in"} 1' in text

    def test_unknown_path_is_404_and_non_get_is_400(self):
        async def body():
            server = MetricsServer()
            await server.start()
            try:
                missing = await self._get(server.port, "/nope")
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"POST /metrics HTTP/1.0\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                await writer.wait_closed()
                return missing, int(raw.decode().split()[1])
            finally:
                await server.stop()

        (missing_status, _), post_status = asyncio.run(body())
        assert missing_status == 404
        assert post_status == 400


# ----------------------------------------------------------------------
# Instrumented retry loop
# ----------------------------------------------------------------------
class TestRetryMetrics:
    def test_attempts_retries_and_backoff_are_recorded(self):
        registry = MetricsRegistry()
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.1, multiplier=2.0, jitter=0.0
        )
        slept = []

        async def fake_sleep(delay):
            slept.append(delay)

        calls = []

        async def operation():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        result = asyncio.run(
            retry_async(
                operation,
                policy=policy,
                sleep=fake_sleep,
                registry=registry,
                op="upload",
            )
        )
        assert result == "ok"
        assert registry.value("retry.attempts_total", op="upload") == 3
        assert registry.value("retry.retries_total", op="upload") == 2
        assert registry.value(
            "retry.backoff_seconds_total", op="upload"
        ) == pytest.approx(sum(slept))
        assert slept == [0.1, 0.2]
        assert registry.value("retry.exhausted_total", op="upload") == 0

    def test_exhaustion_is_counted(self):
        registry = MetricsRegistry()
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)

        async def operation():
            raise OSError("always")

        async def fake_sleep(delay):
            pass

        with pytest.raises(RetryExhaustedError):
            asyncio.run(
                retry_async(
                    operation,
                    policy=policy,
                    sleep=fake_sleep,
                    registry=registry,
                    op="doomed",
                )
            )
        assert registry.value("retry.exhausted_total", op="doomed") == 1
        assert registry.value("retry.attempts_total", op="doomed") == 2

"""Regenerate the time-sliced matrix golden file from the fixed
scenario in tests/test_streaming.py::golden_payload.

Usage::

    PYTHONPATH=src python tests/data/regen_streaming_golden.py
"""

import json
import sys
from pathlib import Path

DATA_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(DATA_DIR.parent))

from test_streaming import golden_payload  # noqa: E402


def main() -> None:
    path = DATA_DIR / "streaming_golden.json"
    path.write_text(json.dumps(golden_payload(), indent=2) + "\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()

"""Regenerate the exporter golden files from the fixed workload in
tests/test_obs.py::golden_registry.

Usage::

    PYTHONPATH=src python tests/data/regen_metrics_golden.py
"""

import sys
from pathlib import Path

DATA_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(DATA_DIR.parent))

from test_obs import golden_registry  # noqa: E402

from repro.obs import render_prometheus, write_jsonl  # noqa: E402


def main() -> None:
    registry = golden_registry()
    prom = DATA_DIR / "metrics_golden.prom"
    prom.write_text(render_prometheus(registry))
    jsonl = DATA_DIR / "metrics_golden.jsonl"
    with jsonl.open("w") as stream:
        rows = write_jsonl(registry, stream)
    print(f"wrote {prom} and {jsonl} ({rows} rows)")


if __name__ == "__main__":
    main()

"""Tests for trip tables."""

import pytest

from repro.errors import NetworkDataError
from repro.roadnet.trips import TripTable


@pytest.fixture
def table():
    return TripTable({(1, 2): 100, (2, 1): 80, (1, 3): 50})


class TestConstruction:
    def test_basic_access(self, table):
        assert table.trips(1, 2) == 100
        assert table.trips(3, 1) == 0
        assert table.total_trips == 230
        assert len(table) == 3

    def test_zero_entries_dropped(self):
        table = TripTable({(1, 2): 0, (1, 3): 5})
        assert len(table) == 1

    def test_intra_node_rejected(self):
        with pytest.raises(NetworkDataError):
            TripTable({(1, 1): 5})

    def test_negative_rejected(self):
        with pytest.raises(NetworkDataError):
            TripTable({(1, 2): -5})


class TestAggregates:
    def test_production_attraction(self, table):
        assert table.production(1) == 150
        assert table.attraction(1) == 80
        assert table.production(3) == 0

    def test_nodes_and_origins(self, table):
        assert table.nodes() == [1, 2, 3]
        assert table.origins() == [1, 2]

    def test_pairs_sorted(self, table):
        keys = [pair for pair, _ in table.pairs()]
        assert keys == sorted(keys)


class TestTransforms:
    def test_scaled(self, table):
        scaled = table.scaled(2.0)
        assert scaled.trips(1, 2) == 200
        assert table.trips(1, 2) == 100  # original untouched

    def test_scaled_rounds(self, table):
        scaled = table.scaled(0.014)
        assert scaled.trips(1, 2) == 1  # round(1.4)

    def test_invalid_scale(self, table):
        with pytest.raises(NetworkDataError):
            table.scaled(0)

    def test_symmetrized_balances(self, table):
        sym = table.symmetrized()
        assert sym.trips(1, 2) == sym.trips(2, 1) == 90
        assert sym.trips(1, 3) == sym.trips(3, 1) == 25

    def test_to_matrix(self, table):
        matrix = table.to_matrix()
        assert matrix.shape == (3, 3)
        assert matrix[0, 1] == 100
        assert matrix[1, 0] == 80
        assert matrix.sum() == 230

    def test_to_matrix_subset(self, table):
        matrix = table.to_matrix(nodes=[1, 2])
        assert matrix.shape == (2, 2)
        assert matrix.sum() == 180

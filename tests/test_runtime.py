"""The deterministic parallel runtime: ordering, plans, guards, metrics.

The parallel-vs-serial bit-identity of real experiment batteries is
covered by ``test_parallel_determinism.py``; this module tests the
runtime machinery itself.
"""

import os

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, metric_rows
from repro.runtime import (
    EXECUTOR_ENV,
    EXECUTORS,
    WORKERS_ENV,
    Task,
    default_executor,
    default_workers,
    in_worker,
    resolve_plan,
    run_tasks,
    task,
)


def _square(x):
    return x * x


def _fail_on(x, bad):
    if x == bad:
        raise ValueError(f"boom at {x}")
    return x


def _nested_plan(_):
    """Report the plan a nested run_tasks call would resolve to."""
    return in_worker(), resolve_plan(workers=4, executor="process")


class TestRunTasks:
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("workers", [1, 2, 5])
    def test_results_in_submission_order(self, workers, executor):
        tasks = [task(_square, x) for x in range(11)]
        assert run_tasks(tasks, workers=workers, executor=executor) == [
            x * x for x in range(11)
        ]

    def test_empty_batch(self):
        assert run_tasks([]) == []

    def test_workers_clamped_to_batch_size(self):
        # 100 workers on 2 tasks must not blow up pool creation.
        assert run_tasks(
            [task(_square, 3), task(_square, 4)], workers=100, executor="thread"
        ) == [9, 16]

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_lowest_indexed_failure_raised(self, executor):
        tasks = [Task(fn=_fail_on, args=(x, 2), label=f"t{x}") for x in range(5)]
        tasks.append(Task(fn=_fail_on, args=(9, 9), label="t9"))
        with pytest.raises(ValueError, match="boom at 2"):
            run_tasks(tasks, workers=3, executor=executor)

    def test_failure_chain_names_task(self):
        with pytest.raises(ValueError) as excinfo:
            run_tasks(
                [Task(fn=_fail_on, args=(1, 1), label="doomed"),
                 task(_square, 2)],
                workers=2,
                executor="thread",
            )
        assert "task #0 (doomed)" in str(excinfo.value.__cause__)

    def test_rejects_bare_callables(self):
        with pytest.raises(ConfigurationError, match="expects Task"):
            run_tasks([lambda: 1])

    def test_task_helper_packs_args(self):
        t = task(_fail_on, 3, bad=7)
        assert t.run() == 3


class TestPlanResolution:
    def test_defaults_are_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        assert default_workers() == 1
        assert default_executor() is None
        assert resolve_plan() == (1, "serial")

    def test_multiworker_defaults_to_process(self):
        assert resolve_plan(workers=4) == (4, "process")

    def test_serial_executor_forces_one_worker(self):
        assert resolve_plan(workers=8, executor="serial") == (1, "serial")

    def test_env_workers_and_executor(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "6")
        monkeypatch.setenv(EXECUTOR_ENV, "thread")
        assert resolve_plan() == (6, "thread")
        # Explicit arguments beat the environment.
        assert resolve_plan(workers=2, executor="process") == (2, "process")

    def test_bad_env_values(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ConfigurationError, match="integer"):
            default_workers()
        monkeypatch.setenv(WORKERS_ENV, "0")
        with pytest.raises(ConfigurationError, match=">= 1"):
            default_workers()
        monkeypatch.setenv(EXECUTOR_ENV, "gpu")
        with pytest.raises(ConfigurationError, match="one of"):
            default_executor()

    def test_bad_arguments(self):
        with pytest.raises(ConfigurationError, match=">= 1"):
            resolve_plan(workers=0)
        with pytest.raises(ConfigurationError, match="one of"):
            resolve_plan(workers=2, executor="fiber")


class TestNestedGuard:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_nested_run_degrades_to_serial(self, executor):
        # Two outer tasks so the outer batch genuinely uses the pool.
        outcomes = run_tasks(
            [task(_nested_plan, 0), task(_nested_plan, 1)],
            workers=2,
            executor=executor,
        )
        for inside, plan in outcomes:
            assert inside is True
            assert plan == (1, "serial")

    def test_main_process_is_not_a_worker(self):
        assert in_worker() is False
        assert os.environ.get("REPRO_RUNTIME_IN_WORKER") is None


class TestMetrics:
    def test_batch_metrics_recorded(self):
        registry = MetricsRegistry()
        run_tasks(
            [task(_square, x) for x in range(4)],
            workers=2,
            executor="thread",
            registry=registry,
        )
        rows = {
            (row["name"], tuple(sorted(row["labels"].items()))): row
            for row in metric_rows(registry)
        }
        submitted = rows[
            ("runtime.tasks_submitted_total", (("executor", "thread"),))
        ]
        completed = rows[
            ("runtime.tasks_completed_total", (("executor", "thread"),))
        ]
        assert submitted["value"] == 4
        assert completed["value"] == 4
        assert rows[("runtime.workers", ())]["value"] == 2
        batch = rows[("runtime.batch_seconds", (("executor", "thread"),))]
        assert batch["count"] == 1

    def test_failed_counter(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            run_tasks(
                [task(_fail_on, 1, 1)],
                executor="serial",
                registry=registry,
            )
        rows = {row["name"]: row for row in metric_rows(registry)}
        assert rows["runtime.tasks_failed_total"]["value"] == 1

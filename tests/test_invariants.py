"""Cross-cutting property tests of the scheme's core invariants.

Each property here is a statement the analysis of the paper rests on,
checked over randomized configurations with hypothesis.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.encoder import encode_passes
from repro.core.estimator import q_intersection, q_point
from repro.core.parameters import SchemeParameters
from repro.core.unfolding import unfold, unfolded_or
from repro.privacy.formulas import preserved_privacy, preserved_privacy_exact
from repro.traffic.population import VehicleFleet

sizes = st.integers(min_value=3, max_value=10).map(lambda k: 1 << k)
small_counts = st.integers(min_value=0, max_value=300)


class TestEncodingInvariants:
    @given(sizes, small_counts, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_ones_bounded_by_population(self, m, n, seed):
        params = SchemeParameters(s=2, load_factor=1.0, m_o=1 << 10, hash_seed=seed)
        fleet = VehicleFleet.random(n, seed=seed) if n else VehicleFleet(
            np.empty(0, np.uint64), np.empty(0, np.uint64)
        )
        report = encode_passes(fleet.ids, fleet.keys, 1, m, params)
        assert report.counter == n
        assert report.bits.count_ones() <= min(n, m)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_encoding_deterministic(self, seed):
        params = SchemeParameters(s=2, load_factor=1.0, m_o=1 << 10, hash_seed=seed)
        fleet = VehicleFleet.random(50, seed=1)
        a = encode_passes(fleet.ids, fleet.keys, 1, 256, params)
        b = encode_passes(fleet.ids, fleet.keys, 1, 256, params)
        assert a.bits == b.bits

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_rsu_identity_separates_arrays(self, seed):
        """Different RSUs see (statistically) different bit patterns
        from the same fleet — no cross-RSU linkability by equality."""
        params = SchemeParameters(s=2, load_factor=1.0, m_o=1 << 10, hash_seed=seed)
        fleet = VehicleFleet.random(100, seed=2)
        a = encode_passes(fleet.ids, fleet.keys, 1, 1 << 10, params)
        b = encode_passes(fleet.ids, fleet.keys, 2, 1 << 10, params)
        assert a.bits != b.bits


class TestUnfoldingInvariants:
    @given(sizes, st.integers(min_value=0, max_value=3), st.data())
    @settings(max_examples=25, deadline=None)
    def test_unfold_then_or_is_commutative_on_zero_fraction(
        self, m, factor_log, data
    ):
        from repro.core.bitarray import BitArray

        m_y = m << factor_log
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        small = BitArray.from_bits(rng.random(m) < 0.4)
        large = BitArray.from_bits(rng.random(m_y) < 0.4)
        joint_a = unfolded_or(small, large)
        joint_b = unfolded_or(large, small)
        assert joint_a == joint_b
        assert unfold(small, m_y).zero_fraction() == pytest.approx(
            small.zero_fraction()
        )


class TestModelInvariants:
    @given(
        st.integers(min_value=0, max_value=5_000),
        st.integers(min_value=0, max_value=5_000),
        st.sampled_from([2, 5, 10]),
    )
    @settings(max_examples=40)
    def test_q_intersection_bounds(self, n_x, n_y, s):
        """q(n_c) is increasing in n_c and bounded by q(n_c=0) * rho^n_c."""
        m_x, m_y = 1 << 13, 1 << 16
        n_c_max = min(n_x, n_y)
        q0 = float(q_intersection(n_x, n_y, 0, m_x, m_y, s))
        q_full = float(q_intersection(n_x, n_y, n_c_max, m_x, m_y, s))
        assert q_full >= q0 - 1e-15
        assert q0 == pytest.approx(
            float(q_point(n_x, m_x) * q_point(n_y, m_y)), rel=1e-12
        )

    @given(
        st.integers(min_value=1, max_value=3_000),
        st.integers(min_value=1, max_value=10),
        st.floats(min_value=0.0, max_value=1.0),
        st.sampled_from([2, 5]),
    )
    @settings(max_examples=40)
    def test_exact_and_paper_privacy_stay_close(self, n_x, ratio, frac, s):
        """Eq. (43) is a good approximation of the exact conditional
        everywhere in the evaluated domain (within 0.15 absolute; the
        sign of the gap depends on the load regime)."""
        n_y = n_x * ratio
        n_c = int(frac * n_x)
        m_x, m_y = 1 << 12, 1 << 16
        paper = float(preserved_privacy(n_x, n_y, n_c, m_x, m_y, s))
        exact = float(preserved_privacy_exact(n_x, n_y, n_c, m_x, m_y, s))
        assert 0.0 <= paper <= 1.0 and 0.0 <= exact <= 1.0
        assert abs(exact - paper) < 0.15

    def test_paper_within_two_percent_at_fig2_operating_points(self):
        """At the paper's own operating points (f near f*, n_c = 0.1 n)
        the printed formula sits within ~2% of the exact conditional
        (the sign of the small gap varies with the configuration)."""
        for n_x, ratio, s in ((10_000, 1, 2), (10_000, 10, 5), (10_000, 50, 5)):
            n_y = n_x * ratio
            m_x, m_y = 32_768, 32_768 * ratio
            # round m_y up to a power of two for the exact form
            m_y = 1 << (m_y - 1).bit_length()
            paper = float(preserved_privacy(n_x, n_y, 0.1 * n_x, m_x, m_y, s))
            exact = float(
                preserved_privacy_exact(n_x, n_y, 0.1 * n_x, m_x, m_y, s)
            )
            assert abs(exact - paper) < 0.02

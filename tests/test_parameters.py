"""Unit tests for SchemeParameters."""

import pytest

from repro.core.parameters import SchemeParameters
from repro.errors import ConfigurationError


class TestSchemeParameters:
    def test_defaults_valid(self):
        params = SchemeParameters()
        assert params.s == 2
        assert params.salts.size == 2

    def test_salts_derived_from_seed(self):
        a = SchemeParameters(s=3, hash_seed=5)
        b = SchemeParameters(s=3, hash_seed=5)
        assert list(a.salts) == list(b.salts)
        c = SchemeParameters(s=3, hash_seed=6)
        assert list(a.salts) != list(c.salts)

    @pytest.mark.parametrize("bad_s", [0, -1, 2.5])
    def test_invalid_s(self, bad_s):
        with pytest.raises(ConfigurationError):
            SchemeParameters(s=bad_s)

    def test_invalid_load_factor(self):
        with pytest.raises(ConfigurationError):
            SchemeParameters(load_factor=0)

    def test_m_o_power_of_two(self):
        with pytest.raises(ConfigurationError):
            SchemeParameters(m_o=1000)

    def test_s_must_be_less_than_m_o(self):
        with pytest.raises(ConfigurationError):
            SchemeParameters(s=16, m_o=16)

    def test_with_m_o(self):
        params = SchemeParameters(s=2, m_o=64, hash_seed=1)
        bigger = params.with_m_o(256)
        assert bigger.m_o == 256
        assert bigger.s == params.s
        assert bigger.hash_seed == params.hash_seed
        assert list(bigger.salts) == list(params.salts)

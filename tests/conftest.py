"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parameters import SchemeParameters
from repro.traffic.population import VehicleFleet


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for test randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_params() -> SchemeParameters:
    """Scheme parameters sized for fast unit tests."""
    return SchemeParameters(s=2, load_factor=2.0, m_o=1 << 12, hash_seed=99)


@pytest.fixture
def small_fleet() -> VehicleFleet:
    """A 500-vehicle fleet."""
    return VehicleFleet.random(500, seed=7)


def relative_error(estimate: float, truth: float) -> float:
    """|estimate - truth| / truth, for readability in assertions."""
    return abs(estimate - truth) / truth

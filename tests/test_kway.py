"""Validation of the general k-way intersection estimator."""

import math

import numpy as np
import pytest

from repro.core.encoder import encode_passes
from repro.core.estimator import ZeroFractionPolicy, log_collision_ratio
from repro.core.multiway import (
    estimate_multiway,
    estimate_triple,
    log_avoid_visiting,
    log_q_triple_coefficients,
    mobius_coefficient,
)
from repro.core.parameters import SchemeParameters
from repro.errors import ConfigurationError, EstimationError
from repro.traffic.population import VehicleFleet


class TestLogAvoidVisiting:
    def test_single_rsu(self):
        assert log_avoid_visiting((1024,), 2) == pytest.approx(
            math.log1p(-1 / 1024)
        )

    def test_pair_matches_closed_form(self):
        m_a, m_b, s = 4096, 16384, 3
        expected = (1 / s) * (1 - 1 / m_a) + (1 - 1 / s) * (1 - 1 / m_a) * (
            1 - 1 / m_b
        )
        assert log_avoid_visiting((m_a, m_b), s) == pytest.approx(
            math.log(expected), rel=1e-12
        )

    def test_triple_matches_dedicated_derivation(self):
        sizes = (1 << 12, 1 << 13, 1 << 14)
        # Reconstruct A_3 from the dedicated triple coefficients.
        d_xy, d_xz, d_yz, d_3 = log_q_triple_coefficients(*sizes, 2)
        l = [math.log1p(-1 / m) for m in sizes]
        a3 = d_3 + sum(l) + d_xy + d_xz + d_yz
        assert log_avoid_visiting(sizes, 2) == pytest.approx(a3, rel=1e-12)

    def test_empty(self):
        assert log_avoid_visiting((), 2) == 0.0


class TestMobiusCoefficient:
    def test_singleton(self):
        assert mobius_coefficient((512,), 2) == pytest.approx(
            math.log1p(-1 / 512)
        )

    def test_pair_is_eq5_denominator(self):
        m_a, m_b = 1 << 12, 1 << 15
        assert mobius_coefficient((m_a, m_b), 2) == pytest.approx(
            log_collision_ratio(2, m_b), rel=1e-9
        )

    def test_triple_matches_dedicated(self):
        sizes = (1 << 12, 1 << 13, 1 << 14)
        *_, d_3 = log_q_triple_coefficients(*sizes, 2)
        assert mobius_coefficient(sizes, 2) == pytest.approx(d_3, rel=1e-9)


def nested_population(group_counts, memberships, m_sizes, s, hash_seed, seed):
    """Encode a population given exclusive groups and RSU memberships."""
    total = sum(group_counts)
    fleet = VehicleFleet.random(total, seed=seed)
    params = SchemeParameters(
        s=s, load_factor=1.0, m_o=m_sizes[-1], hash_seed=hash_seed
    )
    spans = []
    cursor = 0
    for count in group_counts:
        spans.append((cursor, cursor + count))
        cursor += count
    reports = []
    for rsu_index, m in enumerate(m_sizes):
        chunks_ids, chunks_keys = [], []
        for span, member_of in zip(spans, memberships):
            if rsu_index in member_of:
                chunks_ids.append(fleet.ids[span[0]:span[1]])
                chunks_keys.append(fleet.keys[span[0]:span[1]])
        ids = np.concatenate(chunks_ids) if chunks_ids else np.empty(0, np.uint64)
        keys = np.concatenate(chunks_keys) if chunks_keys else np.empty(0, np.uint64)
        reports.append(encode_passes(ids, keys, rsu_index + 1, m, params))
    return tuple(reports)


class TestEstimateMultiway:
    def test_pairwise_close_to_eq5(self):
        """k=2 multiway (counter-based singles) lands near the Eq. (5)
        estimator and near the truth."""
        from repro.core.estimator import estimate_intersection

        reports = nested_population(
            [3_000, 4_000, 1_500],            # x-only, y-only, both
            [(0,), (1,), (0, 1)],
            (1 << 15, 1 << 17),
            2,
            hash_seed=3,
            seed=3,
        )
        multi = estimate_multiway(reports, 2)
        pair = estimate_intersection(reports[0], reports[1], 2,
                                     policy=ZeroFractionPolicy.CLAMP)
        assert multi.value == pytest.approx(1_500, rel=0.25)
        assert multi.value == pytest.approx(pair.value, rel=0.25)

    def test_triple_agrees_with_dedicated_estimator(self):
        counts = [2_000, 3_000, 5_000, 800, 700, 900, 1_200]
        memberships = [(0,), (1,), (2,), (0, 1), (0, 2), (1, 2), (0, 1, 2)]
        sizes = (1 << 16, 1 << 17, 1 << 18)
        multi_vals, triple_vals = [], []
        for trial in range(6):
            reports = nested_population(
                counts, memberships, sizes, 2, hash_seed=trial, seed=trial
            )
            multi_vals.append(estimate_multiway(reports, 2).value)
            triple_vals.append(
                estimate_triple(*reports, 2, policy=ZeroFractionPolicy.CLAMP).value
            )
        assert float(np.mean(multi_vals)) == pytest.approx(1_200, rel=0.35)
        assert float(np.mean(triple_vals)) == pytest.approx(
            float(np.mean(multi_vals)), rel=0.30
        )

    def test_four_way_recovery(self):
        """k=4: recover the quadruple-intersection volume."""
        # Groups: 4 singles, the 'chain' pair overlaps, and the
        # all-four core.
        counts = [3_000, 3_000, 3_000, 3_000, 2_000]
        memberships = [(0,), (1,), (2,), (3,), (0, 1, 2, 3)]
        sizes = (1 << 16, 1 << 16, 1 << 17, 1 << 17)
        estimates = []
        for trial in range(6):
            reports = nested_population(
                counts, memberships, sizes, 2, hash_seed=50 + trial, seed=trial
            )
            estimates.append(estimate_multiway(reports, 2).value)
        assert float(np.mean(estimates)) == pytest.approx(2_000, rel=0.35)

    def test_subset_estimates_exposed(self):
        reports = nested_population(
            [1_000, 1_000, 1_000, 500],
            [(0,), (1,), (2,), (0, 1, 2)],
            (1 << 14, 1 << 14, 1 << 15),
            2,
            hash_seed=9,
            seed=9,
        )
        result = estimate_multiway(reports, 2)
        # All three pairs plus the triple.
        assert len(result.subset_estimates) == 4
        assert result.clamped_nonnegative >= 0.0

    def test_validation(self):
        reports = nested_population(
            [100, 100, 50], [(0,), (1,), (0, 1)], (1 << 10, 1 << 10), 2, 1, 1
        )
        with pytest.raises(ConfigurationError):
            estimate_multiway((reports[0],), 2)
        with pytest.raises(ConfigurationError):
            estimate_multiway(reports, 1)
        with pytest.raises(EstimationError):
            estimate_multiway((reports[0], reports[0]), 2)

"""The kernel dispatch layer: registry contract and a differential
battery proving every registered backend bit-identical on all six ops.

:mod:`repro.engine.kernels` is the single hot-path surface — the
encoder's scatter, the decoder's joint-zero and pairwise-OR counts,
streaming's window merges, and federation's CRDT join all dispatch
through one :class:`~repro.engine.kernels.KernelTable` per backend.
These tests run the whole battery over ``engine.available_backends()``
(so an optional backend like numba is swept automatically when its
import gate opens), with the ``legacy`` bool backend as the oracle,
and finish with a full Sioux Falls period whose wire bytes and
estimates must agree across every backend.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.engine as engine
from repro.core.bitarray import BitArray
from repro.core.encoder import RsuState
from repro.engine import kernels
from repro.errors import ConfigurationError

ALL_BACKENDS = engine.available_backends()
ORACLE = "legacy"

sizes = st.integers(min_value=1, max_value=520)


def _indices(data, size, max_factor=2):
    drawn = data.draw(
        st.lists(st.integers(0, size - 1), max_size=max_factor * size)
    )
    return np.asarray(drawn, dtype=np.int64)


def _filled(backend_name, size, indices):
    backend = engine.get_backend(backend_name)
    storage = backend.zeros(size)
    if indices.size:
        kernels.get_kernels(backend_name).set_bits(storage, size, indices)
    return backend, storage


# ----------------------------------------------------------------------
# Registry and dispatch contract
# ----------------------------------------------------------------------
class TestKernelRegistry:
    def test_every_backend_has_a_table(self):
        assert kernels.registered_kernels() == ALL_BACKENDS
        for name in ALL_BACKENDS:
            table = kernels.get_kernels(name)
            assert table.backend == name
            assert set(table.ops()) == set(kernels.KERNEL_OPS)

    def test_resolution_paths(self):
        table = kernels.get_kernels("packed")
        assert kernels.get_kernels(table) is table
        assert kernels.get_kernels(engine.get_backend("packed")) is table
        assert kernels.get_kernels(None).backend == engine.default_backend_name()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            kernels.get_kernels("vector512")

    def test_with_overrides_rejects_unknown_op(self):
        table = kernels.get_kernels("packed")
        with pytest.raises(ConfigurationError):
            table.with_overrides(frobnicate=lambda: None)

    def test_with_overrides_swaps_one_op(self):
        table = kernels.get_kernels("packed")
        patched = table.with_overrides(popcount=lambda s, n: 42)
        assert patched.popcount(None, 0) == 42
        assert patched.set_bits is table.set_bits
        # The registered table is untouched.
        assert kernels.get_kernels("packed") is table

    def test_duplicate_registration_rejected(self):
        table = kernels.get_kernels("packed")
        with pytest.raises(ConfigurationError):
            kernels.register_kernels(table)
        kernels.register_kernels(table, replace=True)
        assert kernels.get_kernels("packed") is table

    def test_register_backend_validates(self):
        with pytest.raises(ConfigurationError):
            engine.register_backend(object())
        packed = engine.get_backend("packed")
        with pytest.raises(ConfigurationError):
            engine.register_backend(packed)
        with pytest.raises(ConfigurationError):
            engine.register_backend(
                packed,
                kernel_table=kernels.get_kernels("legacy"),
                replace=True,
            )
        # Replacing with itself is a no-op that must keep the registry
        # consistent.
        engine.register_backend(packed, replace=True)
        assert engine.get_backend("packed") is packed
        assert kernels.get_kernels("packed").backend == "packed"

    def test_numba_gate_is_honest(self):
        from repro.engine import numba_backend

        if numba_backend.HAVE_NUMBA:  # pragma: no cover - numba CI leg
            assert "numba" in ALL_BACKENDS
            assert numba_backend.NumbaWordBackend is not None
        else:
            assert "numba" not in ALL_BACKENDS
            assert numba_backend.NumbaWordBackend is None
            with pytest.raises(ImportError):
                numba_backend.kernel_table(engine.get_backend("packed"))


# ----------------------------------------------------------------------
# Differential battery: every registered backend vs the legacy oracle
# ----------------------------------------------------------------------
class TestKernelDifferential:
    """All six ops, arbitrary sizes, every registered backend."""

    @given(sizes, st.data())
    @settings(max_examples=60, deadline=None)
    def test_set_bits_and_popcount(self, size, data):
        indices = _indices(data, size)
        reference = None
        for name in ALL_BACKENDS:
            backend, storage = _filled(name, size, indices)
            as_bytes = backend.to_bytes(storage, size)
            if reference is None:
                reference = as_bytes
            assert as_bytes == reference, name
            count = kernels.get_kernels(name).popcount(storage, size)
            assert count == len(set(indices.tolist())), name

    @given(sizes, st.integers(0, 6), st.data())
    @settings(max_examples=60, deadline=None)
    def test_or_reduce(self, size, arrays, data):
        index_sets = [_indices(data, size, 1) for _ in range(arrays)]
        union = set()
        for idx in index_sets:
            union.update(idx.tolist())
        reference = None
        for name in ALL_BACKENDS:
            backend = engine.get_backend(name)
            storages = [_filled(name, size, idx)[1] for idx in index_sets]
            table = kernels.get_kernels(name)
            merged = table.or_reduce(storages, size)
            as_bytes = backend.to_bytes(merged, size)
            if reference is None:
                reference = as_bytes
            assert as_bytes == reference, name
            assert table.popcount(merged, size) == len(union), name
            # Inputs must not be mutated by the reduction.
            for storage, idx in zip(storages, index_sets):
                assert table.popcount(storage, size) == len(
                    set(idx.tolist())
                ), name

    @given(sizes, st.integers(1, 8), st.data())
    @settings(max_examples=60, deadline=None)
    def test_unfold(self, size, repeats, data):
        indices = _indices(data, size, 1)
        expected = np.zeros(size, dtype=bool)
        expected[indices] = True
        expected = np.tile(expected, repeats)
        reference = None
        for name in ALL_BACKENDS:
            backend, storage = _filled(name, size, indices)
            unfolded = kernels.get_kernels(name).unfold(
                storage, size, repeats
            )
            as_bytes = backend.to_bytes(unfolded, size * repeats)
            if reference is None:
                reference = as_bytes
            assert as_bytes == reference, name
            assert np.array_equal(
                backend.to_bool(unfolded, size * repeats), expected
            ), name

    @given(sizes, st.data())
    @settings(max_examples=60, deadline=None)
    def test_joint_zero_counts(self, size, data):
        ia, ib = _indices(data, size, 1), _indices(data, size, 1)
        expected = size - len(set(ia.tolist()) | set(ib.tolist()))
        for name in ALL_BACKENDS:
            _, a = _filled(name, size, ia)
            _, b = _filled(name, size, ib)
            zeros = kernels.get_kernels(name).joint_zero_counts(a, b, size)
            assert zeros == expected, name

    @given(sizes, st.integers(1, 5), st.data())
    @settings(max_examples=60, deadline=None)
    def test_pairwise_or_popcount(self, size, rows, data):
        row_idx = _indices(data, size, 1)
        other_idx = [_indices(data, size, 1) for _ in range(rows)]
        expected = np.asarray(
            [
                len(set(row_idx.tolist()) | set(idx.tolist()))
                for idx in other_idx
            ],
            dtype=np.int64,
        )
        for name in ALL_BACKENDS:
            backend, row = _filled(name, size, row_idx)
            stacked = backend.stack(
                [_filled(name, size, idx)[1] for idx in other_idx], size
            )
            counts = kernels.get_kernels(name).pairwise_or_popcount(
                row, stacked, size
            )
            assert counts.dtype == np.int64, name
            assert np.array_equal(counts, expected), name


# ----------------------------------------------------------------------
# BitArray-level entry points the kernels back
# ----------------------------------------------------------------------
class TestBitArrayKernelSurface:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_set_bits_unchecked_matches_set_bits(self, backend):
        rng = np.random.default_rng(5)
        indices = rng.integers(0, 300, size=64).astype(np.int64)
        checked = BitArray(300, backend=backend)
        checked.set_bits(indices)
        trusted = BitArray(300, backend=backend)
        trusted.set_bits_unchecked(indices)
        trusted.set_bits_unchecked(indices[:0])  # empty batch is a no-op
        assert checked == trusted
        assert checked.to_bytes() == trusted.to_bytes()

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_or_reduce_equals_pairwise_or(self, backend):
        rng = np.random.default_rng(7)
        arrays = [
            BitArray.from_indices(
                96, rng.integers(0, 96, size=20), backend=backend
            )
            for _ in range(5)
        ]
        merged = BitArray.or_reduce(arrays)
        expected = arrays[0]
        for other in arrays[1:]:
            expected = expected | other
        assert merged == expected
        assert merged.backend == backend

    def test_or_reduce_empty_and_mismatched(self):
        with pytest.raises(ConfigurationError):
            BitArray.or_reduce([])
        empty = BitArray.or_reduce([], size=32)
        assert empty.size == 32 and empty.count_ones() == 0
        with pytest.raises(ConfigurationError):
            BitArray.or_reduce(
                [BitArray(32), BitArray(64)],
            )
        with pytest.raises(ConfigurationError):
            BitArray.or_reduce([BitArray(32)], size=64)

    def test_or_reduce_converts_mixed_backends(self):
        a = BitArray.from_indices(40, [1, 7], backend="legacy")
        b = BitArray.from_indices(40, [7, 31], backend="packed")
        merged = BitArray.or_reduce([a, b], backend="packed")
        assert merged.backend == "packed"
        assert sorted(np.flatnonzero(merged.bits).tolist()) == [1, 7, 31]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_record_trusted_matches_record_many(self, backend):
        rng = np.random.default_rng(11)
        indices = rng.integers(0, 128, size=50).astype(np.int64)
        checked = RsuState(rsu_id=1, array_size=128, engine=backend)
        checked.record_many(indices)
        trusted = RsuState(rsu_id=1, array_size=128, engine=backend)
        trusted.record_trusted(indices)
        assert checked.counter == trusted.counter == 50
        assert checked.bits == trusted.bits


# ----------------------------------------------------------------------
# A full Sioux Falls period, bit-identical on every registered backend
# ----------------------------------------------------------------------
class TestSiouxFallsAcrossAllBackends:
    @pytest.fixture(scope="class")
    def schemes(self):
        import repro
        from repro.traffic.network_workload import sioux_falls_workload

        workload = sioux_falls_workload(total_trips=12_000, seed=11)
        built = {}
        for backend in ALL_BACKENDS:
            scheme = repro.VlmScheme(
                workload.volumes(),
                s=2,
                load_factor=3.0,
                hash_seed=7,
                policy="clamp",
                engine=backend,
            )
            scheme.run_period(workload.passes())
            built[backend] = scheme
        return built

    def test_wire_bytes_identical_across_backends(self, schemes):
        oracle = schemes[ORACLE].decoder
        for backend in ALL_BACKENDS:
            decoder = schemes[backend].decoder
            for rsu_id in oracle.rsu_ids():
                assert (
                    decoder.report_for(rsu_id).bits.to_bytes()
                    == oracle.report_for(rsu_id).bits.to_bytes()
                ), (backend, rsu_id)

    def test_estimates_bit_identical_across_backends(self, schemes):
        oracle = schemes[ORACLE].decoder.estimate_matrix()
        for backend in ALL_BACKENDS:
            assert schemes[backend].decoder.estimate_matrix() == oracle, (
                backend
            )

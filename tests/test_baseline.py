"""Tests for the fixed-length baseline scheme of [9]."""

import pytest

from repro.baseline.scheme import FixedLengthScheme
from repro.core.sizing import fixed_array_size_for_privacy, prev_power_of_two
from repro.core.scheme import VlmScheme
from repro.errors import ConfigurationError
from repro.privacy.formulas import preserved_privacy
from repro.traffic.random_workload import make_pair_population


class TestPrevPowerOfTwo:
    @pytest.mark.parametrize(
        "value,expected",
        [(1, 2), (2, 2), (3, 2), (4, 4), (1023, 512), (1024, 1024), (420_000, 262_144)],
    )
    def test_values(self, value, expected):
        assert prev_power_of_two(value) == expected


class TestFixedArraySizeForPrivacy:
    def test_scales_with_n_min(self):
        small = fixed_array_size_for_privacy([10_000, 500_000], 2)
        large = fixed_array_size_for_privacy([40_000, 500_000], 2)
        assert small <= large

    def test_privacy_floor_respected(self):
        volumes = [20_000, 100_000]
        m = fixed_array_size_for_privacy(volumes, 2, min_privacy=0.5)
        n_min = min(volumes)
        p = float(preserved_privacy(n_min, n_min, 0.1 * n_min, m, m, 2))
        assert p >= 0.5

    def test_non_power_of_two_option(self):
        m = fixed_array_size_for_privacy([10_000], 2, power_of_two=False)
        assert m > 2

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            fixed_array_size_for_privacy([], 2)

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            fixed_array_size_for_privacy([0], 2)


class TestFixedLengthScheme:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FixedLengthScheme(1000)  # not a power of two
        with pytest.raises(ConfigurationError):
            FixedLengthScheme(16, s=16)

    def test_equal_traffic_accuracy_matches_vlm(self):
        """With n_y = n_x the two schemes are nearly the same system;
        both should land near the truth."""
        pop = make_pair_population(10_000, 10_000, 2_000, seed=6)
        baseline = FixedLengthScheme(65_536, s=2, hash_seed=3)
        baseline.run_period(pop.passes())
        base_est = baseline.decoder.pair_estimate(pop.rsu_x, pop.rsu_y)
        vlm = VlmScheme(pop.volumes(), s=2, load_factor=6.0, hash_seed=3)
        vlm.run_period(pop.passes())
        vlm_est = vlm.decoder.pair_estimate(pop.rsu_x, pop.rsu_y)
        assert base_est.error_ratio(pop.n_c) < 0.15
        assert vlm_est.error_ratio(pop.n_c) < 0.15

    def test_unbalanced_traffic_degrades_baseline(self):
        """The paper's headline failure mode: with n_y = 50 n_x and m
        sized for n_x's privacy, the baseline's error is much larger
        than VLM's (averaged over a few seeds to avoid flakiness)."""
        base_errors, vlm_errors = [], []
        for seed in range(5):
            pop = make_pair_population(4_000, 200_000, 1_000, seed=seed)
            m = fixed_array_size_for_privacy([pop.n_x, pop.n_y], 2)
            baseline = FixedLengthScheme(m, s=2, hash_seed=seed + 50)
            reports = baseline.encode(pop.passes())
            base_errors.append(
                baseline.measure(
                    reports[pop.rsu_x], reports[pop.rsu_y]
                ).error_ratio(pop.n_c)
            )
            vlm = VlmScheme(
                pop.volumes(), s=2, load_factor=13.0, hash_seed=seed + 50
            )
            vreports = vlm.encode(pop.passes())
            vlm_errors.append(
                vlm.measure(
                    vreports[pop.rsu_x], vreports[pop.rsu_y]
                ).error_ratio(pop.n_c)
            )
        assert sum(vlm_errors) < sum(base_errors)

    def test_counter_exact(self):
        pop = make_pair_population(500, 700, 100, seed=7)
        baseline = FixedLengthScheme(4_096, s=2)
        reports = baseline.encode(pop.passes())
        assert reports[pop.rsu_x].counter == 500
        assert reports[pop.rsu_y].counter == 700

    def test_repr(self):
        assert "m=64" in repr(FixedLengthScheme(64))

"""Tests for the pseudonym strawman baseline."""

import pytest

from repro.baseline.pseudonym import PseudonymScheme, trajectory_linkability
from repro.errors import EstimationError
from repro.traffic.random_workload import make_pair_population


@pytest.fixture
def measured():
    pop = make_pair_population(2_000, 5_000, 700, seed=3)
    scheme = PseudonymScheme(hash_seed=9)
    reports = scheme.encode(pop.passes())
    return pop, scheme, reports


class TestExactness:
    def test_intersection_is_exact(self, measured):
        pop, scheme, _ = measured
        assert scheme.measure(pop.rsu_x, pop.rsu_y) == pop.n_c

    def test_counters(self, measured):
        pop, _, reports = measured
        assert reports[pop.rsu_x].counter == pop.n_x
        assert reports[pop.rsu_y].counter == pop.n_y

    def test_zero_overlap(self):
        pop = make_pair_population(100, 100, 0, seed=4)
        scheme = PseudonymScheme()
        scheme.encode(pop.passes())
        assert scheme.measure(pop.rsu_x, pop.rsu_y) == 0

    def test_missing_report(self, measured):
        _, scheme, _ = measured
        with pytest.raises(EstimationError):
            scheme.measure(1, 99)


class TestPrivacyFailure:
    def test_full_trajectory_linkability(self, measured):
        """Every common vehicle's trace is recoverable — the failure
        that motivates bit array masking."""
        pop, _, reports = measured
        assert trajectory_linkability(reports) == 1.0

    def test_no_multi_rsu_vehicles_means_nothing_to_link(self):
        pop = make_pair_population(50, 60, 0, seed=5)
        scheme = PseudonymScheme()
        reports = scheme.encode(pop.passes())
        assert trajectory_linkability(reports) == 0.0

    def test_period_salt_breaks_cross_period_linking(self):
        """Pseudonyms rotate per period, so the same vehicle appears
        under different pseudonyms on different days."""
        pop = make_pair_population(100, 100, 100, seed=6)
        scheme = PseudonymScheme(hash_seed=1)
        day0 = scheme.encode_rsu(1, *pop.passes_at_x(), period=0)
        day1 = scheme.encode_rsu(1, *pop.passes_at_x(), period=1)
        overlap = set(map(int, day0.pseudonyms)) & set(map(int, day1.pseudonyms))
        assert not overlap

"""Tests for the online coding phase (Eqs. 1-2)."""

import numpy as np
import pytest

from repro.core.encoder import RsuState, encode_passes
from repro.errors import ConfigurationError
from repro.hashing.logical_bitarray import LogicalBitArray


class TestRsuState:
    def test_record_sets_bit_and_counter(self):
        state = RsuState(rsu_id=1, array_size=16)
        state.record(5)
        assert state.counter == 1
        assert state.bits[5] == 1

    def test_record_bounds(self):
        state = RsuState(rsu_id=1, array_size=16)
        with pytest.raises(ConfigurationError):
            state.record(16)
        with pytest.raises(ConfigurationError):
            state.record(-1)

    def test_record_many(self):
        state = RsuState(rsu_id=1, array_size=16)
        state.record_many(np.array([1, 1, 3]))
        assert state.counter == 3
        assert state.bits.count_ones() == 2

    def test_record_many_bounds(self):
        state = RsuState(rsu_id=1, array_size=16)
        with pytest.raises(ConfigurationError):
            state.record_many(np.array([15, 16]))

    def test_array_size_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            RsuState(rsu_id=1, array_size=12)

    def test_reset_new_period(self):
        state = RsuState(rsu_id=1, array_size=16)
        state.record(2)
        state.reset(period=3)
        assert state.counter == 0
        assert state.bits.count_ones() == 0
        assert state.period == 3

    def test_report_snapshots(self):
        state = RsuState(rsu_id=9, array_size=16, period=2)
        state.record(1)
        report = state.report()
        state.record(2)
        assert report.rsu_id == 9
        assert report.period == 2
        assert report.counter == 1
        assert report.bits.count_ones() == 1  # unaffected by later records


class TestEncodePasses:
    def test_counter_counts_all_passes(self, small_params, small_fleet):
        report = encode_passes(
            small_fleet.ids, small_fleet.keys, 4, 256, small_params
        )
        assert report.counter == len(small_fleet)
        # duplicates collapse: ones <= vehicles
        assert 0 < report.bits.count_ones() <= len(small_fleet)

    def test_matches_agent_level_indices(self, small_params, small_fleet):
        """Vectorized encoder must agree bit-for-bit with the
        per-vehicle LogicalBitArray path."""
        rsu_id, m_x = 6, 128
        report = encode_passes(
            small_fleet.ids, small_fleet.keys, rsu_id, m_x, small_params
        )
        reference = RsuState(rsu_id=rsu_id, array_size=m_x)
        for vid, key in zip(small_fleet.ids, small_fleet.keys):
            lb = LogicalBitArray(
                int(vid),
                int(key),
                small_params.salts,
                small_params.m_o,
                seed=small_params.hash_seed,
            )
            reference.record(lb.bit_for_rsu(rsu_id, m_x))
        assert reference.report().bits == report.bits
        assert reference.counter == report.counter

    def test_rejects_array_larger_than_m_o(self, small_params, small_fleet):
        with pytest.raises(ConfigurationError):
            encode_passes(
                small_fleet.ids,
                small_fleet.keys,
                1,
                small_params.m_o * 2,
                small_params,
            )

    def test_rejects_shape_mismatch(self, small_params):
        with pytest.raises(ConfigurationError):
            encode_passes(
                np.arange(3, dtype=np.uint64),
                np.arange(4, dtype=np.uint64),
                1,
                64,
                small_params,
            )

    def test_empty_population(self, small_params):
        report = encode_passes(
            np.array([], dtype=np.uint64),
            np.array([], dtype=np.uint64),
            1,
            64,
            small_params,
        )
        assert report.counter == 0
        assert report.bits.count_zeros() == 64

    def test_period_tag(self, small_params, small_fleet):
        report = encode_passes(
            small_fleet.ids, small_fleet.keys, 1, 64, small_params, period=7
        )
        assert report.period == 7

    def test_fill_matches_occupancy_expectation(self, small_params):
        """With n inserts into m bits, zeros ~ m(1-1/m)^n."""
        n, m = 2000, 1024
        ids = np.arange(n, dtype=np.uint64)
        keys = ids * np.uint64(7919) + np.uint64(13)
        report = encode_passes(ids, keys, 3, m, small_params)
        expected = m * (1 - 1 / m) ** n
        assert report.bits.count_zeros() == pytest.approx(expected, rel=0.15)

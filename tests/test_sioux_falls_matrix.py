"""Tests for the all-pairs Sioux Falls matrix experiment."""

import pytest

from repro.experiments.sioux_falls_matrix import run_sioux_falls_matrix


@pytest.fixture(scope="module")
def result():
    return run_sioux_falls_matrix(total_trips=80_000, min_truth=500, seed=13)


class TestRunMatrix:
    def test_covers_many_pairs(self, result):
        assert len(result.outcomes) > 100

    def test_d_values_valid(self, result):
        assert all(o.d >= 1.0 for o in result.outcomes)

    def test_vlm_beats_baseline_on_medians(self, result):
        vlm = result.percentiles("vlm")
        base = result.percentiles("baseline")
        assert vlm["median"] < base["median"]
        assert vlm["p90"] < base["p90"]

    def test_vlm_median_is_small(self, result):
        assert result.percentiles("vlm")["median"] < 0.06

    def test_stratification_covers_all_outcomes(self, result):
        rows = result.stratified_by_d()
        assert sum(count for _, count, _, _ in rows) == len(result.outcomes)

    def test_min_truth_respected(self, result):
        assert all(o.truth >= result.min_truth for o in result.outcomes)

    def test_render(self, result):
        text = result.render()
        assert "Sioux Falls full traffic matrix" in text
        assert "median" in text

"""Tests for route assignment."""

import pytest

from repro.errors import NetworkDataError
from repro.roadnet.graph import Arc, RoadNetwork
from repro.roadnet.routing import assign_routes
from repro.roadnet.sioux_falls import sioux_falls_network
from repro.roadnet.trips import TripTable


@pytest.fixture
def line_network():
    """1 - 2 - 3 - 4 chain (both directions)."""
    arcs = []
    for a, b in [(1, 2), (2, 3), (3, 4)]:
        arcs.append(Arc(a, b))
        arcs.append(Arc(b, a))
    return RoadNetwork("line", arcs)


class TestAssignRoutes:
    def test_routes_cover_all_pairs(self, line_network):
        trips = TripTable({(1, 4): 10, (4, 1): 5, (2, 3): 7})
        plan = assign_routes(line_network, trips)
        assert len(plan) == 3
        assert plan.route(1, 4) == [1, 2, 3, 4]
        assert plan.route(4, 1) == [4, 3, 2, 1]

    def test_missing_route(self, line_network):
        plan = assign_routes(line_network, TripTable({(1, 2): 1}))
        with pytest.raises(NetworkDataError):
            plan.route(2, 1)

    def test_disconnected_pair(self):
        net = RoadNetwork("disc", [Arc(1, 2), Arc(3, 4)])
        with pytest.raises(NetworkDataError):
            assign_routes(net, TripTable({(1, 4): 1}))

    def test_vehicles_through(self, line_network):
        trips = TripTable({(1, 4): 10, (2, 3): 7})
        plan = assign_routes(line_network, trips)
        assert plan.vehicles_through(2) == 17
        assert plan.vehicles_through(1) == 10
        assert plan.vehicles_through(4) == 10

    def test_sioux_falls_routes_are_shortest(self):
        network = sioux_falls_network()
        trips = TripTable({(1, 20): 5, (13, 8): 5})
        plan = assign_routes(network, trips)
        for (o, d), _ in trips.pairs():
            route = plan.route(o, d)
            assert route[0] == o and route[-1] == d
            assert network.path_time(route) == pytest.approx(
                network.path_time(network.shortest_path(o, d))
            )

"""Integration tests: gateway + collector over localhost sockets.

The headline property is the issue's acceptance criterion — a live
Sioux Falls day streamed through the socket pipeline must decode to
exactly the estimates the in-process :class:`CentralDecoder` produces
for the same seed.
"""

import asyncio

import pytest

from repro.service import wire
from repro.service.collector import CollectorService
from repro.service.gateway import RsuGateway
from repro.service.loadgen import run_loadgen
from repro.service.runtime import DeploymentSpec, start_services
from repro.vcps.ids import random_mac
from repro.vcps.pki import CertificateAuthority
from repro.vcps.rsu import RoadsideUnit


@pytest.fixture(scope="module")
def spec():
    # Small but non-trivial: every node carries traffic, all 276 pairs
    # are queryable.
    return DeploymentSpec(total_trips=1_500, seed=13)


def run(coroutine):
    return asyncio.run(coroutine)


async def _with_services(spec, body):
    """Run *body(gateway, collector)* against live localhost services."""
    gateway, collector = await start_services(
        spec, gateway_port=0, collector_port=0
    )
    try:
        return await body(gateway, collector)
    finally:
        await gateway.stop()
        await collector.stop()


class TestLiveDayMatchesInProcess:
    def test_loadgen_is_bit_identical(self, spec):
        async def body(gateway, collector):
            return await run_loadgen(
                spec,
                gateway_port=gateway.port,
                collector_port=collector.port,
            )

        result = run(_with_services(spec, body))
        assert result.snapshots_acked == len(spec.scheme.rsu_ids)
        assert result.counters_checked == len(spec.scheme.rsu_ids)
        assert result.counter_mismatches == []
        assert result.estimates_checked > 200
        assert result.mismatches == []
        assert result.bit_identical
        assert result.responses_sent > 0
        assert result.throughput > 0

    def test_gateway_arrays_match_vectorized_encoder(self, spec):
        """After the replay, each RSU's counter equals the encoder's."""

        async def body(gateway, collector):
            await run_loadgen(
                spec,
                gateway_port=gateway.port,
                collector_port=collector.port,
            )
            return {
                rsu_id: collector.server.point_volume(rsu_id)
                for rsu_id in spec.scheme.rsu_ids
            }

        live_counters = run(_with_services(spec, body))
        for rsu_id, report in spec.reference_reports().items():
            assert live_counters[rsu_id] == report.counter


class TestGatewayRobustness:
    @pytest.fixture
    def rsus(self):
        authority = CertificateAuthority(seed=5)
        return {7: RoadsideUnit(7, 64, authority.issue(7))}

    def test_single_response_and_rejection(self, rsus):
        async def body():
            gateway = RsuGateway(
                rsus, collector_port=1, flush_interval=0.01
            )
            await gateway.start(port=0)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.port
                )
                await wire.write_message(
                    writer,
                    wire.ResponseMsg(rsu_id=7, mac=random_mac(1), bit_index=9),
                )
                # Out of range for a 64-bit array: dropped, not fatal.
                await wire.write_message(
                    writer,
                    wire.ResponseMsg(rsu_id=7, mac=random_mac(2), bit_index=64),
                )
                # Unknown RSU: answered with an error frame.
                await wire.write_message(
                    writer,
                    wire.ResponseMsg(rsu_id=99, mac=random_mac(3), bit_index=0),
                )
                answer = await asyncio.wait_for(
                    wire.read_message(reader), timeout=5
                )
                await asyncio.sleep(0.05)  # let the ingest worker flush
                writer.close()
                await writer.wait_closed()
                return answer
            finally:
                await gateway.stop()

        answer = run(body())
        assert isinstance(answer, wire.ErrorMsg)
        assert answer.code == wire.E_UNKNOWN_RSU
        rsu = rsus[7]
        assert rsu.counter == 1
        assert rsu.rejected_responses == 1

    def test_malformed_frame_gets_error_and_close(self, rsus):
        async def body():
            gateway = RsuGateway(rsus, collector_port=1)
            await gateway.start(port=0)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.port
                )
                writer.write(b"garbage that is not a frame..")
                await writer.drain()
                answer = await asyncio.wait_for(
                    wire.read_message(reader), timeout=5
                )
                eof = await reader.read()  # server closes after the error
                return answer, eof
            finally:
                await gateway.stop()

        answer, eof = run(body())
        assert isinstance(answer, wire.ErrorMsg)
        assert answer.code == wire.E_MALFORMED
        assert eof == b""

    def test_upload_retry_exhaustion_is_reported(self, rsus):
        """No collector listening: close_period retries, then gives up
        without raising, and the ack reports zero snapshots."""

        async def body():
            gateway = RsuGateway(
                rsus,
                collector_port=1,  # nothing listens here
                upload_timeout=0.2,
                upload_retries=2,
            )
            await gateway.start(port=0)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.port
                )
                await wire.write_message(writer, wire.EndPeriod(period=0))
                ack = await asyncio.wait_for(
                    wire.read_message(reader), timeout=30
                )
                writer.close()
                await writer.wait_closed()
                return ack, gateway.snapshots_failed
            finally:
                await gateway.stop()

        ack, failed = run(body())
        assert isinstance(ack, wire.EndPeriodAck)
        assert ack.snapshots == 0
        assert failed == 1


class TestCollectorRobustness:
    def test_snapshot_ingest_and_queries(self, spec):
        async def body():
            collector = CollectorService(spec.build_central_server())
            await collector.start(port=0)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", collector.port
                )
                reports = spec.reference_reports()
                for report in reports.values():
                    await wire.write_message(
                        writer, wire.Snapshot.from_report(report)
                    )
                    ack = await wire.read_message(reader)
                    assert isinstance(ack, wire.SnapshotAck)
                # A pair query answered from the uploaded snapshots.
                a, b = spec.scheme.rsu_ids[:2]
                await wire.write_message(
                    writer, wire.VolumeQuery(rsu_x=a, rsu_y=b, period=0)
                )
                estimate = await wire.read_message(reader)
                # Same-RSU pair is an estimation error, not a crash.
                await wire.write_message(
                    writer, wire.VolumeQuery(rsu_x=a, rsu_y=a, period=0)
                )
                error = await wire.read_message(reader)
                # A message the collector does not serve.
                await wire.write_message(writer, wire.EndPeriod(period=0))
                rejected = await wire.read_message(reader)
                writer.close()
                await writer.wait_closed()
                return estimate, error, rejected
            finally:
                await collector.stop()

        estimate, error, rejected = run(body())
        a, b = spec.scheme.rsu_ids[:2]
        expected = spec.reference_decoder().pair_estimate(a, b)
        assert isinstance(estimate, wire.EstimateMsg)
        assert estimate.n_c_hat == expected.value
        assert isinstance(error, wire.ErrorMsg)
        assert error.code == wire.E_ESTIMATION
        assert isinstance(rejected, wire.ErrorMsg)
        assert rejected.code == wire.E_MALFORMED

    def test_missing_report_is_estimation_error(self, spec):
        async def body():
            collector = CollectorService(spec.build_central_server())
            await collector.start(port=0)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", collector.port
                )
                await wire.write_message(
                    writer, wire.VolumeQuery(rsu_x=1, rsu_y=2, period=0)
                )
                answer = await wire.read_message(reader)
                writer.close()
                await writer.wait_closed()
                return answer
            finally:
                await collector.stop()

        answer = run(body())
        assert isinstance(answer, wire.ErrorMsg)
        assert answer.code == wire.E_ESTIMATION

"""Unit tests for repro.utils.validation."""

import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_positive_int,
    check_power_of_two,
    check_probability,
    is_power_of_two,
    next_power_of_two,
)


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 8, 1024, 1 << 40])
    def test_accepts_powers(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -1, -2, 3, 6, 12, 1023, (1 << 40) - 1])
    def test_rejects_non_powers(self, value):
        assert not is_power_of_two(value)


class TestNextPowerOfTwo:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0.5, 1),
            (1, 1),
            (2, 2),
            (3, 4),
            (4, 4),
            (5, 8),
            (8.5, 16),
            (30_000, 32_768),
            (451_000 * 3, 2_097_152),
        ],
    )
    def test_values(self, value, expected):
        assert next_power_of_two(value) == expected

    def test_matches_ceil_log2_definition(self):
        import math

        for value in [1.5, 7, 100, 999, 4096, 4097, 123456.7]:
            assert next_power_of_two(value) == 2 ** math.ceil(math.log2(value))


class TestCheckers:
    def test_check_power_of_two_passes_through(self):
        assert check_power_of_two(64, "m") == 64

    @pytest.mark.parametrize("value", [0, 3, -4, 2.5])
    def test_check_power_of_two_rejects(self, value):
        with pytest.raises(ConfigurationError, match="m"):
            check_power_of_two(value, "m")

    def test_check_positive(self):
        assert check_positive(0.1, "x") == 0.1
        with pytest.raises(ConfigurationError):
            check_positive(0, "x")
        with pytest.raises(ConfigurationError):
            check_positive(-1, "x")

    def test_check_positive_int(self):
        assert check_positive_int(5, "n") == 5
        for bad in (0, -3, 2.5):
            with pytest.raises(ConfigurationError):
                check_positive_int(bad, "n")

    def test_check_probability(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        for bad in (-0.01, 1.01):
            with pytest.raises(ConfigurationError):
                check_probability(bad, "p")

    def test_check_in_range_inclusive_and_exclusive(self):
        assert check_in_range(5, 0, 10, "v") == 5
        assert check_in_range(0, 0, 10, "v") == 0
        with pytest.raises(ConfigurationError):
            check_in_range(0, 0, 10, "v", inclusive=False)
        with pytest.raises(ConfigurationError):
            check_in_range(11, 0, 10, "v")

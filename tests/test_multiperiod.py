"""Tests for multi-period aggregation."""


import pytest

from repro.core.estimator import PairEstimate
from repro.core.multiperiod import aggregate_estimates
from repro.core.scheme import VlmScheme
from repro.errors import EstimationError
from repro.experiments.multiperiod import run_multiperiod
from repro.traffic.random_workload import make_pair_population


def fake_estimate(value, n_x=2_000, n_y=8_000, m_x=8_192, m_y=32_768, s=2):
    return PairEstimate(
        value=value, v_c=0.5, v_x=0.7, v_y=0.8,
        m_x=m_x, m_y=m_y, n_x=n_x, n_y=n_y, s=s,
    )


class TestAggregateEstimates:
    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            aggregate_estimates([])

    def test_unknown_weighting_rejected(self):
        with pytest.raises(EstimationError):
            aggregate_estimates([fake_estimate(10)], weights="magic")

    def test_single_estimate_uses_closed_form_stderr(self):
        agg = aggregate_estimates([fake_estimate(500)])
        assert agg.value == 500
        assert agg.periods == 1
        assert agg.stderr > 0

    def test_mean_method(self):
        agg = aggregate_estimates(
            [fake_estimate(400), fake_estimate(600)], weights="mean"
        )
        assert agg.value == pytest.approx(500)
        assert agg.method == "mean"
        # sample stderr of [400, 600]: std=141.4, /sqrt(2) = 100
        assert agg.stderr == pytest.approx(100, rel=0.02)

    def test_inverse_variance_equal_configs_is_mean(self):
        agg = aggregate_estimates([fake_estimate(400), fake_estimate(600)])
        assert agg.value == pytest.approx(500)
        assert agg.method == "inverse-variance"

    def test_inverse_variance_prefers_precise_period(self):
        """A period with 8x larger arrays (lower variance) should pull
        the combined estimate towards its value."""
        precise = fake_estimate(400, m_x=65_536, m_y=262_144)
        noisy = fake_estimate(600, m_x=8_192, m_y=32_768)
        agg = aggregate_estimates([precise, noisy])
        assert agg.value < 500

    def test_stderr_shrinks_with_periods(self):
        one = aggregate_estimates([fake_estimate(500)])
        four = aggregate_estimates([fake_estimate(500)] * 4)
        assert four.stderr == pytest.approx(one.stderr / 2, rel=0.01)

    def test_confidence_interval(self):
        agg = aggregate_estimates([fake_estimate(500)] * 4)
        with pytest.warns(DeprecationWarning, match="confidence_interval"):
            low, high = agg.confidence_interval()
        assert low < 500 < high
        assert high - low == pytest.approx(2 * 1.96 * agg.stderr)


class TestEndToEnd:
    def test_aggregation_beats_single_period(self):
        """Four real periods combined land closer to the truth, on
        average, than one period."""
        pop = make_pair_population(4_000, 16_000, 800, seed=1)
        single_errors, multi_errors = [], []
        for trial in range(6):
            estimates = []
            for period in range(4):
                scheme = VlmScheme(
                    pop.volumes(), s=2, load_factor=6.0,
                    hash_seed=1000 * trial + period,
                )
                reports = scheme.encode(pop.passes(), period=period)
                estimates.append(
                    scheme.measure(reports[pop.rsu_x], reports[pop.rsu_y])
                )
            single_errors.append(abs(estimates[0].value - 800))
            agg = aggregate_estimates(estimates)
            multi_errors.append(abs(agg.value - 800))
        assert sum(multi_errors) < sum(single_errors)


class TestRunMultiperiod:
    def test_error_decays_roughly_sqrt(self):
        result = run_multiperiod(
            n_x=4_000, n_y=16_000, n_c=800,
            period_counts=(1, 4), trials=14, seed=2,
        )
        one = result.mean_abs_error[1]
        four = result.mean_abs_error[4]
        assert four < one
        # predicted stderr follows 1/sqrt(P) exactly
        assert result.predicted_stderr[4] == pytest.approx(
            result.predicted_stderr[1] / 2, rel=0.05
        )

    def test_render(self):
        result = run_multiperiod(
            n_x=2_000, n_y=4_000, n_c=400,
            period_counts=(1, 2), trials=2, seed=3,
        )
        text = result.render()
        assert "Multi-period aggregation" in text
        assert "1/sqrt(P)" in text

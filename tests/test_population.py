"""Tests for vehicle fleets and pair populations."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traffic.population import PairPopulation, VehicleFleet


class TestVehicleFleet:
    def test_random_size_and_uniqueness(self):
        fleet = VehicleFleet.random(2_000, seed=1)
        assert len(fleet) == 2_000
        assert np.unique(fleet.ids).size == 2_000

    def test_deterministic_from_seed(self):
        a = VehicleFleet.random(100, seed=5)
        b = VehicleFleet.random(100, seed=5)
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.keys, b.keys)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            VehicleFleet(np.arange(3, dtype=np.uint64), np.arange(4, dtype=np.uint64))

    def test_slice_and_concat(self):
        fleet = VehicleFleet.random(10, seed=2)
        left, right = fleet.slice(0, 4), fleet.slice(4, 10)
        rejoined = left.concat(right)
        assert np.array_equal(rejoined.ids, fleet.ids)

    def test_passes_returns_arrays(self):
        fleet = VehicleFleet.random(5, seed=3)
        ids, keys = fleet.passes()
        assert ids.shape == keys.shape == (5,)


class TestPairPopulation:
    def _population(self):
        fleet = VehicleFleet.random(100, seed=4)
        return PairPopulation(
            common=fleet.slice(0, 20),
            only_x=fleet.slice(20, 50),
            only_y=fleet.slice(50, 100),
            rsu_x=1,
            rsu_y=2,
        )

    def test_cardinalities(self):
        pop = self._population()
        assert pop.n_c == 20
        assert pop.n_x == 50
        assert pop.n_y == 70

    def test_same_rsu_rejected(self):
        fleet = VehicleFleet.random(10, seed=4)
        with pytest.raises(ConfigurationError):
            PairPopulation(
                common=fleet.slice(0, 2),
                only_x=fleet.slice(2, 5),
                only_y=fleet.slice(5, 10),
                rsu_x=1,
                rsu_y=1,
            )

    def test_passes_partition(self):
        pop = self._population()
        ids_x, _ = pop.passes_at_x()
        ids_y, _ = pop.passes_at_y()
        assert ids_x.size == 50
        assert ids_y.size == 70
        assert np.intersect1d(ids_x, ids_y).size == 20

    def test_passes_dict_and_volumes(self):
        pop = self._population()
        passes = pop.passes()
        assert set(passes) == {1, 2}
        assert pop.volumes() == {1: 50, 2: 70}

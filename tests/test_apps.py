"""Tests for the transportation-study applications."""

import pytest

from repro.apps.exposure import measure_exposure
from repro.apps.link_flows import LinkFlowStudy, measure_link_flows
from repro.apps.turning_movements import (
    measure_turning_movements,
    true_turning_movements,
)
from repro.core.estimator import ZeroFractionPolicy
from repro.core.scheme import VlmScheme
from repro.errors import ConfigurationError, EstimationError, NetworkDataError
from repro.roadnet.graph import Arc, RoadNetwork
from repro.roadnet.trips import TripTable
from repro.roadnet.volumes import pair_common_volumes
from repro.traffic.network_workload import NetworkWorkload


@pytest.fixture(scope="module")
def measured_line():
    """A 4-node line network with measured traffic and ground truth."""
    arcs = []
    for a, b in [(1, 2), (2, 3), (3, 4)]:
        arcs.append(Arc(a, b, free_flow_time=1.0))
        arcs.append(Arc(b, a, free_flow_time=1.0))
    network = RoadNetwork("line", arcs)
    trips = TripTable({(1, 4): 4_000, (4, 1): 4_000, (2, 3): 2_000, (1, 2): 1_000})
    workload = NetworkWorkload.build(network, trips, seed=1)
    scheme = VlmScheme(
        workload.volumes(), s=2, load_factor=10.0, hash_seed=5,
        policy=ZeroFractionPolicy.CLAMP,
    )
    scheme.run_period(workload.passes())
    return network, workload, scheme


class TestLinkFlows:
    def test_flows_match_ground_truth(self, measured_line):
        network, workload, scheme = measured_line
        truth = pair_common_volumes(workload.plan)
        study = measure_link_flows(
            scheme.decoder, network, truth=truth
        )
        assert set(study.flows) == {(1, 2), (2, 3), (3, 4)}
        assert study.mean_abs_error() < 0.10

    def test_heaviest_ranks_middle_link_first(self, measured_line):
        network, workload, scheme = measured_line
        study = measure_link_flows(scheme.decoder, network)
        heaviest_link, _ = study.heaviest(1)[0]
        assert heaviest_link == (2, 3)  # carries 10,000 of the 11,000

    def test_total_flow_positive(self, measured_line):
        network, _, scheme = measured_line
        study = measure_link_flows(scheme.decoder, network)
        assert study.total_flow() > 0

    def test_error_requires_truth(self, measured_line):
        network, _, scheme = measured_line
        study = measure_link_flows(scheme.decoder, network)
        with pytest.raises(EstimationError):
            study.mean_abs_error()

    def test_render(self, measured_line):
        network, workload, scheme = measured_line
        truth = pair_common_volumes(workload.plan)
        text = measure_link_flows(scheme.decoder, network, truth=truth).render()
        assert "Link flow distribution" in text
        assert "2-3" in text


class TestExposure:
    def test_vkt_and_rates(self, measured_line):
        network, _, scheme = measured_line
        flows = measure_link_flows(scheme.decoder, network)
        lengths = {(1, 2): 1.5, (2, 3): 2.0, (3, 4): 0.5}
        incidents = {(2, 3): 4}
        study = measure_exposure(flows, lengths, incidents=incidents)
        assert study.total_vkt() == pytest.approx(
            sum(flows.flows[l] * lengths[l] for l in lengths), rel=1e-9
        )
        expected_rate = 4 / study.vkt[(2, 3)] * 1e6
        assert study.incident_rates[(2, 3)] == pytest.approx(expected_rate)

    def test_missing_length_rejected(self, measured_line):
        network, _, scheme = measured_line
        flows = measure_link_flows(scheme.decoder, network)
        with pytest.raises(NetworkDataError):
            measure_exposure(flows, {(1, 2): 1.0})

    def test_invalid_inputs(self):
        flows = LinkFlowStudy(flows={(1, 2): 100.0})
        with pytest.raises(ConfigurationError):
            measure_exposure(flows, {(1, 2): 0.0})
        with pytest.raises(ConfigurationError):
            measure_exposure(flows, {(1, 2): 1.0}, incidents={(1, 2): -1})
        with pytest.raises(NetworkDataError):
            measure_exposure(flows, {(1, 2): 1.0}, incidents={(3, 4): 1})

    def test_render(self, measured_line):
        network, _, scheme = measured_line
        flows = measure_link_flows(scheme.decoder, network)
        lengths = {(1, 2): 1.5, (2, 3): 2.0, (3, 4): 0.5}
        text = measure_exposure(flows, lengths).render()
        assert "Road exposure" in text


class TestTurningMovements:
    def test_true_movements_from_routes(self, measured_line):
        _, workload, _ = measured_line
        truth = true_turning_movements(workload.plan, 2)
        # Through movement 1-2-3 carries the 8,000 (1<->4) trips.
        assert truth[(1, 3)] == 8_000

    def test_measured_shares_track_truth(self, measured_line):
        network, workload, scheme = measured_line
        study = measure_turning_movements(
            scheme.decoder, network, 2, truth_plan=workload.plan
        )
        assert study.dominant_movement() == (1, 3)
        shares = study.shares()
        true_total = sum(study.truth.values())
        for key, true in study.truth.items():
            assert shares.get(key, 0.0) == pytest.approx(
                true / true_total, abs=0.12
            )

    def test_requires_two_approaches(self, measured_line):
        network, _, scheme = measured_line
        with pytest.raises(NetworkDataError):
            measure_turning_movements(scheme.decoder, network, 1)

    def test_unknown_node(self, measured_line):
        network, _, scheme = measured_line
        with pytest.raises(NetworkDataError):
            measure_turning_movements(scheme.decoder, network, 42)

    def test_render(self, measured_line):
        network, workload, scheme = measured_line
        text = measure_turning_movements(
            scheme.decoder, network, 2, truth_plan=workload.plan
        ).render()
        assert "Turning movements at intersection 2" in text
        assert "1 - 2 - 3" in text

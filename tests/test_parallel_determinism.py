"""Bit-identity of experiment batteries across execution plans.

The runtime's contract — results are bit-identical for every worker
count and executor — checked on real batteries: the Monte-Carlo
accuracy simulation, Table I, and the Sioux Falls matrix.  Serial at
one worker is the reference; every other plan must reproduce it
exactly (``to_jsonable`` canonical form compares every float bit).

Process-pool plans are exercised once per battery (pool spin-up
dominates tiny workloads); thread plans cover the worker-count sweep.
"""

import json

import pytest

from repro.accuracy.montecarlo import simulate_accuracy
from repro.experiments.sioux_falls_matrix import run_sioux_falls_matrix
from repro.experiments.table1 import run_table1
from repro.traffic.scenarios import Table1Pair
from repro.utils.serialization import to_jsonable

PLANS = [(1, "serial"), (2, "thread"), (5, "thread"), (2, "process")]


def canon(result) -> str:
    return json.dumps(to_jsonable(result), sort_keys=True, default=str)


def plans_agree(fn) -> None:
    reference = canon(fn(*PLANS[0]))
    for workers, executor in PLANS[1:]:
        assert canon(fn(workers, executor)) == reference, (
            f"({workers}, {executor}) diverged from serial"
        )


def test_montecarlo_battery():
    plans_agree(
        lambda w, e: simulate_accuracy(
            3_000, 9_000, 800, 8_192, 32_768, 2,
            repetitions=6, seed=17, workers=w, executor=e,
        )
    )


def test_table1_battery():
    pairs = (
        Table1Pair(rsu_x=1, n_x=2_000, n_c=500),
        Table1Pair(rsu_x=3, n_x=1_500, n_c=300),
    )
    plans_agree(
        lambda w, e: run_table1(
            pairs=pairs, repetitions=3, seed=3, workers=w, executor=e
        )
    )


def test_sioux_falls_matrix():
    plans_agree(
        lambda w, e: run_sioux_falls_matrix(
            total_trips=20_000, min_truth=30, seed=13, workers=w, executor=e
        )
    )


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_nested_battery_runs_serial_inside_worker(executor):
    """An experiment that parallelizes internally, dispatched as a task
    itself, must both complete (no nested pools) and keep producing the
    serial reference result."""
    from repro.runtime import run_tasks, task

    reference = canon(
        simulate_accuracy(
            2_000, 4_000, 500, 4_096, 8_192, 2, repetitions=4, seed=29
        )
    )
    inner_a, inner_b = run_tasks(
        [
            task(
                simulate_accuracy,
                2_000, 4_000, 500, 4_096, 8_192, 2,
                repetitions=4, seed=29, workers=4, executor="process",
            )
            for _ in range(2)
        ],
        workers=2,
        executor=executor,
    )
    assert canon(inner_a) == reference
    assert canon(inner_b) == reference

"""Tests for the lossy DSRC channel and its simulation semantics."""

import pytest

from repro.errors import ConfigurationError
from repro.vcps.channel import LossyChannel, PerfectChannel
from repro.vcps.simulation import VcpsSimulation


class TestChannels:
    def test_perfect_channel(self):
        channel = PerfectChannel()
        assert all(channel.deliver_query() for _ in range(100))
        assert all(channel.deliver_response() for _ in range(100))

    def test_lossy_rates(self):
        channel = LossyChannel(query_loss=0.3, response_loss=0.1, seed=1)
        queries = sum(channel.deliver_query() for _ in range(10_000))
        responses = sum(channel.deliver_response() for _ in range(10_000))
        assert queries == pytest.approx(7_000, abs=250)
        assert responses == pytest.approx(9_000, abs=250)
        assert channel.queries_dropped + queries == 10_000
        assert channel.responses_dropped + responses == 10_000

    def test_invalid_rates(self):
        with pytest.raises(ConfigurationError):
            LossyChannel(query_loss=1.0)
        with pytest.raises(ConfigurationError):
            LossyChannel(response_loss=-0.1)


class TestSimulationWithLoss:
    def _run(self, channel, attempts=3, vehicles=400):
        sim = VcpsSimulation(
            {1: vehicles}, s=2, load_factor=4.0, seed=2,
            channel=channel, query_attempts=attempts,
        )
        for vid in range(vehicles):
            sim.drive(vid, [1])
        return sim

    def test_no_loss_counts_everyone(self):
        sim = self._run(PerfectChannel())
        assert sim.rsus[1].counter == 400

    def test_query_loss_mitigated_by_rebroadcast(self):
        """With 3 attempts at 30% query loss, the miss probability per
        vehicle is 0.3^3 = 2.7%."""
        sim = self._run(LossyChannel(query_loss=0.3, seed=3), attempts=3)
        assert sim.rsus[1].counter >= 400 * 0.93

    def test_single_attempt_loses_proportionally(self):
        sim = self._run(LossyChannel(query_loss=0.3, seed=4), attempts=1)
        assert sim.rsus[1].counter == pytest.approx(280, abs=40)

    def test_response_loss_keeps_report_consistent(self):
        """Counter and bit array must agree: both reflect only the
        responses that actually arrived."""
        sim = self._run(LossyChannel(response_loss=0.4, seed=5))
        report = sim.rsus[1].end_period()
        assert report.counter < 400
        assert report.bits.count_ones() <= report.counter

    def test_invalid_attempts(self):
        with pytest.raises(ConfigurationError):
            VcpsSimulation({1: 10}, query_attempts=0)

    def test_estimation_unbiased_for_observed_population(self):
        """Loss shrinks the observed populations but the pairwise
        estimate still tracks the observed overlap."""
        channel = LossyChannel(response_loss=0.2, seed=6)
        sim = VcpsSimulation(
            {1: 400, 2: 400}, s=2, load_factor=6.0, seed=7, channel=channel
        )
        for vid in range(400):
            sim.drive(vid, [1, 2])
        sim.close_period()
        estimate = sim.server.point_to_point(1, 2)
        # Observed overlap is ~400 * 0.8 * 0.8 = 256; generous bounds.
        assert 150 < estimate.value < 380

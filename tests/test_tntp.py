"""Tests for TNTP format support."""

import pytest

from repro.errors import NetworkDataError, TntpFormatError, ValidationError
from repro.roadnet.sioux_falls import sioux_falls_network
from repro.roadnet.tntp import (
    load_network,
    load_trips,
    parse_network,
    parse_trips,
    write_network,
    write_trips,
)
from repro.roadnet.trips import TripTable

SAMPLE_NET = """
<NUMBER OF NODES> 3
<NUMBER OF LINKS> 4
<ORIGINAL HEADER>  whatever
<END OF METADATA>

~ init term capacity length fftime b power speed toll type ;
1 2 25900.2 6 6.0 0.15 4 0 0 1 ;
2 1 25900.2 6 6.0 0.15 4 0 0 1 ;
2 3 4958.2  5 4.0 0.15 4 0 0 1 ;
3 2 4958.2  5 4.0 0.15 4 0 0 1 ;
"""

SAMPLE_TRIPS = """
<NUMBER OF ZONES> 3
<TOTAL OD FLOW> 600.0
<END OF METADATA>

Origin  1
    2 :    100.0;    3 :    200.0;
Origin  2
    1 :     50.5;
Origin  3
    1 :    249.0;    3 :      0.0;
"""


class TestParseNetwork:
    def test_structure(self):
        network = parse_network(SAMPLE_NET, name="sample")
        assert network.num_nodes == 3
        assert network.num_arcs == 4
        assert network.name == "sample"

    def test_attributes(self):
        network = parse_network(SAMPLE_NET)
        arc = next(a for a in network.arcs() if (a.tail, a.head) == (2, 3))
        assert arc.capacity == pytest.approx(4958.2)
        assert arc.free_flow_time == pytest.approx(4.0)

    def test_empty_rejected(self):
        with pytest.raises(NetworkDataError):
            parse_network("<END OF METADATA>\n")

    def test_malformed_line(self):
        with pytest.raises(NetworkDataError):
            parse_network("<END OF METADATA>\n1 2 3 ;\n")
        with pytest.raises(NetworkDataError):
            parse_network("<END OF METADATA>\n1 2 x y z ;\n")


class TestParseTrips:
    def test_demand(self):
        trips = parse_trips(SAMPLE_TRIPS)
        assert trips.trips(1, 2) == 100
        assert trips.trips(1, 3) == 200
        assert trips.trips(2, 1) == 50  # 50.5 rounds half-to-even
        assert trips.trips(3, 1) == 249
        assert trips.total_trips == 599

    def test_zero_and_diagonal_dropped(self):
        trips = parse_trips(SAMPLE_TRIPS)
        assert trips.trips(3, 3) == 0

    def test_empty_rejected(self):
        with pytest.raises(NetworkDataError):
            parse_trips("<END OF METADATA>\nOrigin 1\n")


class TestRobustness:
    """Files as they circulate in the wild: BOM, CRLF, comments,
    stray metadata, and typed line-numbered parse errors."""

    def test_crlf_and_cr_line_endings(self):
        for ending in ("\r\n", "\r"):
            network = parse_network(SAMPLE_NET.replace("\n", ending))
            assert network.num_arcs == 4
            trips = parse_trips(SAMPLE_TRIPS.replace("\n", ending))
            assert trips.total_trips == 599

    def test_utf8_bom_dropped(self):
        assert parse_network("﻿" + SAMPLE_NET).num_arcs == 4

    def test_comment_lines_and_trailing_comments(self):
        text = (
            "<END OF METADATA>\n"
            "~ a full-line comment\n"
            "1 2 100.0 6 6.0 0.15 4 0 0 1 ; ~ main street\n"
            "2 1 100.0 6 6.0 0.15 4 0 0 1 ;\n"
        )
        network = parse_network(text)
        assert network.num_arcs == 2

    def test_marker_case_insensitive(self):
        text = SAMPLE_NET.replace("<END OF METADATA>", "<End of Metadata>")
        assert parse_network(text).num_arcs == 4

    def test_stray_headers_after_marker_ignored(self):
        text = SAMPLE_NET.replace(
            "~ init", "<FIRST THRU NODE> 1\n~ init"
        )
        assert parse_network(text).num_arcs == 4

    def test_file_without_marker_is_all_body(self):
        text = (
            "1 2 100.0 6 6.0 0.15 4 0 0 1 ;\n"
            "2 1 100.0 6 6.0 0.15 4 0 0 1 ;\n"
        )
        assert parse_network(text).num_arcs == 2

    def test_error_is_typed_with_line_number(self):
        bad = "<END OF METADATA>\n1 2 100.0 6 6.0 ;\n1 2 3 ;\n"
        with pytest.raises(TntpFormatError) as excinfo:
            parse_network(bad)
        error = excinfo.value
        assert isinstance(error, NetworkDataError)
        assert isinstance(error, ValidationError)
        assert error.line == 3
        assert "line 3" in str(error)

    def test_non_numeric_link_row(self):
        with pytest.raises(TntpFormatError) as excinfo:
            parse_network("<END OF METADATA>\n1 2 x y z ;\n")
        assert excinfo.value.line == 2

    def test_malformed_demand_entry(self):
        bad = (
            "<END OF METADATA>\n"
            "Origin 1\n"
            "    2 : oops;\n"
        )
        with pytest.raises(TntpFormatError) as excinfo:
            parse_trips(bad)
        assert excinfo.value.line == 3

    def test_trips_comment_lines_skipped(self):
        text = SAMPLE_TRIPS.replace(
            "Origin  2", "~ weekday counts only\nOrigin  2"
        )
        assert parse_trips(text).total_trips == 599


class TestMiniFixture:
    """The checked-in mini TNTP dataset under repro/scenarios/data."""

    def test_network_loads(self):
        from repro.scenarios import mini_tntp_paths

        net_path, _ = mini_tntp_paths()
        network = load_network(net_path)
        assert network.num_nodes == 8
        assert network.num_arcs == 20
        assert network.is_strongly_connected()

    def test_trips_load_and_match_declared_flow(self):
        from repro.scenarios import mini_tntp_paths

        _, trips_path = mini_tntp_paths()
        trips = load_trips(trips_path)
        assert trips.total_trips == 1240
        assert all(o != d for (o, d), _ in trips.pairs())


class TestRoundTrip:
    def test_network_round_trip(self):
        network = sioux_falls_network()
        restored = parse_network(write_network(network), name=network.name)
        assert restored.num_nodes == network.num_nodes
        assert restored.num_arcs == network.num_arcs
        for arc in network.arcs():
            edge = restored.graph.edges[arc.tail, arc.head]
            assert edge["free_flow_time"] == pytest.approx(arc.free_flow_time)

    def test_trips_round_trip(self):
        trips = TripTable({(1, 2): 100, (2, 1): 50, (1, 3): 7, (3, 2): 9})
        restored = parse_trips(write_trips(trips))
        for (o, d), value in trips.pairs():
            assert restored.trips(o, d) == value
        assert restored.total_trips == trips.total_trips

    def test_file_helpers(self, tmp_path):
        network = sioux_falls_network()
        net_path = tmp_path / "sf_net.tntp"
        net_path.write_text(write_network(network))
        assert load_network(net_path).num_arcs == 76

        trips = TripTable({(1, 2): 10})
        trips_path = tmp_path / "sf_trips.tntp"
        trips_path.write_text(write_trips(trips))
        assert load_trips(trips_path).trips(1, 2) == 10


class TestPipelineFromTntp:
    def test_full_pipeline_from_files(self, tmp_path):
        """Parse files -> route -> measure, end to end."""
        from repro.core.scheme import VlmScheme
        from repro.core.estimator import ZeroFractionPolicy
        from repro.traffic.network_workload import NetworkWorkload

        net_path = tmp_path / "net.tntp"
        trips_path = tmp_path / "trips.tntp"
        net_path.write_text(write_network(sioux_falls_network()))
        demand = {(1, 20): 3_000, (20, 1): 3_000, (10, 13): 2_000}
        trips_path.write_text(write_trips(TripTable(demand)))

        workload = NetworkWorkload.build(
            load_network(net_path), load_trips(trips_path), seed=3
        )
        volumes = workload.volumes()
        scheme = VlmScheme(
            volumes, s=2, load_factor=10.0, hash_seed=2,
            policy=ZeroFractionPolicy.CLAMP,
        )
        # Only instrument the nodes this sparse demand actually touches.
        scheme.run_period(workload.passes(sorted(volumes)))
        truth = workload.common_volumes()
        pair = max(truth, key=truth.get)
        estimate = scheme.decoder.pair_estimate(*pair)
        assert estimate.error_ratio(truth[pair]) < 0.15

"""End-to-end tests for the adaptive array-sizing control loop.

Covers every layer the loop threads through: the wire frames, the WAL
record, the server's deterministic planner, in-place RSU resizing, the
agent simulation's between-period hook, the federated collector's
streaming feed, the multi-period deployment spec, the live loadgen
announcement handshake, and the adaptive shard-kill chaos variant.
"""

import asyncio

import numpy as np
import pytest

from repro.core.sizing import AdaptiveSizing, PrivacyOptimalSizing, StaticSizing
from repro.errors import ConfigurationError, ProtocolError, WireError
from repro.federation.chaos import shard_kill_scenario
from repro.federation.collector import FederatedCollector
from repro.federation.wal import WriteAheadLog, replay_wal
from repro.service import wire
from repro.service.loadgen import run_loadgen
from repro.service.runtime import DeploymentSpec, start_services
from repro.vcps.ids import random_mac
from repro.vcps.pki import CertificateAuthority
from repro.vcps.rsu import RoadsideUnit
from repro.vcps.simulation import VcpsSimulation


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.fixture(scope="module")
def spec():
    """Small adaptive deployment whose demand halves every day — the
    drift is steep enough that the controller provably resizes."""
    return DeploymentSpec(
        total_trips=1_500, seed=13, periods=3, drift=-0.5, adaptive=True
    )


class TestWireSizeFrames:
    def roundtrip(self, message):
        frame = wire.encode_frame(message)
        decoded, consumed = wire.decode_frame(frame)
        assert consumed == len(frame)
        return decoded

    def test_size_query(self):
        assert self.roundtrip(wire.SizeQuery(period=7)) == wire.SizeQuery(
            period=7
        )

    def test_size_ack(self):
        msg = wire.SizeAnnounceAck(period=3, applied=12)
        assert self.roundtrip(msg) == msg

    def test_size_announce(self):
        msg = wire.SizeAnnounce.from_sizes(2, {5: 64, 1: 128, 9: 2})
        back = self.roundtrip(msg)
        assert back == msg
        assert back.to_sizes() == {1: 128, 5: 64, 9: 2}

    def test_announce_bytes_are_canonical(self):
        a = wire.SizeAnnounce.from_sizes(1, {3: 8, 1: 4})
        b = wire.SizeAnnounce.from_sizes(1, {1: 4, 3: 8})
        assert wire.encode_frame(a) == wire.encode_frame(b)

    def test_announce_rejects_non_power_of_two(self):
        with pytest.raises(WireError):
            wire.SizeAnnounce.from_sizes(0, {1: 48})

    def test_announce_rejects_size_below_minimum(self):
        with pytest.raises(WireError):
            wire.SizeAnnounce.from_sizes(0, {1: 1})

    def test_announce_rejects_unsorted_ids(self):
        with pytest.raises(WireError):
            wire.SizeAnnounce(
                period=0,
                rsu_ids=np.array([2, 1], dtype=">u4"),
                sizes=np.array([4, 4], dtype=">u4"),
            )


class TestWalSizeRecords:
    def test_announce_roundtrips_through_the_journal(self, tmp_path):
        path = tmp_path / "collector.wal"
        announce = wire.SizeAnnounce.from_sizes(4, {1: 16, 2: 64})
        wal = WriteAheadLog(path)
        wal.append(announce)
        wal.close()
        records = list(replay_wal(path))
        assert records == [announce]


class TestServerPlanSizes:
    def test_static_policy_holds_initial_sizes(self):
        static = DeploymentSpec(total_trips=1_500, seed=13)
        server = static.build_central_server()
        assert server.plan_sizes(0) == server.initial_sizes
        assert server.plan_sizes(7) == server.initial_sizes

    def test_adaptive_plan_matches_the_spec_golden(self, spec):
        """A server fed the real per-period reports must re-derive
        exactly the trajectory the spec computes in process."""
        server = spec.build_central_server()
        for period in range(spec.periods - 1):
            for report in spec.reference_reports(period=period).values():
                server.streaming.observe_report(report)
            assert server.plan_sizes(period + 1) == spec.sizes_for(
                period + 1
            )

    def test_plans_are_cached_and_identical(self, spec):
        server = spec.build_central_server()
        for report in spec.reference_reports(period=0).values():
            server.streaming.observe_report(report)
        assert server.plan_sizes(1) == server.plan_sizes(1)

    def test_adopted_plan_wins_over_rederivation(self, spec):
        server = spec.build_central_server()
        forced = {rsu_id: 4 for rsu_id in server.initial_sizes}
        server.adopt_size_plan(1, forced)
        assert server.plan_sizes(1) == forced

    def test_negative_period_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            spec.build_central_server().plan_sizes(-1)


class TestRsuResize:
    def make_rsu(self, size=64):
        return RoadsideUnit(1, size, CertificateAuthority(seed=7).issue(1))

    def test_resize_preserves_the_period_number(self):
        rsu = self.make_rsu()
        rsu.end_period()
        assert rsu.period == 1
        assert rsu.resize(32)
        assert rsu.period == 1
        assert rsu.array_size == 32
        assert rsu.counter == 0

    def test_same_size_is_a_noop(self):
        rsu = self.make_rsu()
        assert rsu.resize(64) is False

    def test_mid_period_resize_refused(self):
        rsu = self.make_rsu()
        recorded = rsu.handle_index_batch(
            np.array([random_mac(np.random.default_rng(3))], dtype=np.uint64),
            np.array([5], dtype=np.int64),
        )
        assert recorded == 1
        with pytest.raises(ProtocolError):
            rsu.resize(32)


class TestSimulationAdaptive:
    def test_apply_resizing_follows_the_controller(self):
        sim = VcpsSimulation(
            {1: 40.0, 2: 40.0},
            seed=11,
            sizing=AdaptiveSizing(target=StaticSizing(3.0)),
        )
        # Far less traffic than the seed history promised: the
        # controller must shrink (one octave, the default rate limit).
        for vehicle_id in range(4):
            sim.drive(vehicle_id, [1, 2])
        sim.close_period()
        before = {rsu_id: rsu.array_size for rsu_id, rsu in sim.rsus.items()}
        sizes = sim.apply_resizing()
        for rsu_id, rsu in sim.rsus.items():
            assert rsu.array_size == sizes[rsu_id]
            assert rsu.array_size == before[rsu_id] // 2
            assert rsu.period == 1  # resizing must not reset periods
        assert sizes == sim.server.plan_sizes(1)

    def test_static_simulation_keeps_history_rule(self):
        sim = VcpsSimulation({1: 40.0, 2: 40.0}, seed=11)
        for vehicle_id in range(4):
            sim.drive(vehicle_id, [1, 2])
        sim.close_period()
        assert sim.apply_resizing() == {
            rsu_id: min(size, sim.params.m_o)
            for rsu_id, size in sim.server.next_period_sizes().items()
        }


class TestFederatedStreamingFeed:
    def test_shard_merges_reach_the_streaming_tier(self, spec):
        """The adaptive planner reads per-period volumes from the
        streaming tier, so shard OR-merges must land there too."""
        collector = FederatedCollector(spec.build_central_server())
        report = next(iter(spec.reference_reports().values()))
        packed = report.bits.to_bytes()
        for shard, counter in ((0, 3), (1, 4)):
            snap = wire.ShardSnapshot(
                shard_id=shard,
                rsu_id=report.rsu_id,
                period=0,
                counter=counter,
                array_size=report.array_size,
                packed_bits=packed,
                seq=1,
            )
            assert isinstance(collector._handle(snap), wire.SnapshotAck)
        assert collector.server.streaming.counter(report.rsu_id, 0) == 7


class TestDeploymentSpecMultiPeriod:
    def test_trips_decay_geometrically(self, spec):
        assert spec.trips_for(0) == 1_500
        assert spec.trips_for(1) == 750
        assert spec.trips_for(2) == 375

    def test_period_bounds_enforced(self, spec):
        with pytest.raises(ConfigurationError):
            spec.sizes_for(spec.periods)
        with pytest.raises(ConfigurationError):
            spec.trips_for(-1)

    def test_invalid_multi_period_knobs(self):
        with pytest.raises(ConfigurationError):
            DeploymentSpec(total_trips=100, periods=0)
        with pytest.raises(ConfigurationError):
            DeploymentSpec(total_trips=100, periods=2, drift=-1.0)

    def test_static_trajectory_is_constant(self):
        static = DeploymentSpec(
            total_trips=1_500, seed=13, periods=3, drift=-0.5
        )
        trajectory = static.size_trajectory()
        assert trajectory[1] == trajectory[0]
        assert trajectory[2] == trajectory[0]

    def test_adaptive_trajectory_shrinks(self, spec):
        trajectory = spec.size_trajectory()
        assert len(trajectory) == 3
        assert sum(trajectory[2].values()) < sum(trajectory[0].values())
        for plan in trajectory:
            for size in plan.values():
                assert size >= 2 and size & (size - 1) == 0

    def test_observed_volumes_count_passes(self, spec):
        volumes = spec.observed_volumes(0)
        for rsu_id, volume in volumes.items():
            ids, _ = spec.workload.assignment.passes_at(rsu_id)
            assert volume == float(ids.size)

    def test_explicit_adaptive_policy_is_kept(self):
        policy = AdaptiveSizing(
            target=PrivacyOptimalSizing(2), hysteresis=2, max_step=3
        )
        made = DeploymentSpec(
            total_trips=1_000, seed=13, periods=2, drift=-0.4, sizing=policy
        )
        assert made.adaptive
        assert made.sizing is policy


class TestLiveMultiPeriodLoadgen:
    def test_announced_sizes_match_the_golden_trajectory(self, spec):
        async def body():
            gateway, collector = await start_services(
                spec, gateway_port=0, collector_port=0
            )
            try:
                return await run_loadgen(
                    spec,
                    gateway_port=gateway.port,
                    collector_port=collector.port,
                )
            finally:
                await gateway.stop()
                await collector.stop()

        result = run(body())
        assert result.periods == spec.periods
        assert result.trajectory_mismatches == []
        assert result.size_trajectory == spec.size_trajectory()
        assert result.counter_mismatches == []
        assert result.mismatches == []
        assert result.bit_identical


class TestGoldenTrajectoryFile:
    def test_ci_golden_matches_the_spec(self):
        """The checked-in golden CI diffs `loadgen --trajectory-out`
        against must equal the spec's in-process trajectory, rendered
        exactly the way the CLI writes it."""
        import json
        from pathlib import Path

        golden_path = (
            Path(__file__).parent / "data" / "adaptive_trajectory_golden.json"
        )
        ci_spec = DeploymentSpec(
            total_trips=5_000, seed=13, periods=3, drift=-0.5, adaptive=True
        )
        payload = {
            "periods": ci_spec.periods,
            "adaptive": True,
            "trajectory": [
                {str(rsu_id): plan[rsu_id] for rsu_id in sorted(plan)}
                for plan in ci_spec.size_trajectory()
            ],
        }
        rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        assert golden_path.read_text(encoding="utf-8") == rendered


class TestExperimentSmoke:
    def test_adaptive_sizing_experiment(self):
        from repro.experiments.adaptive_sizing import run_adaptive_sizing

        result = run_adaptive_sizing(
            total_trips=2_000, periods=3, attacker_trials=1
        )
        assert len(result.outcomes) == 3
        assert result.adaptive_always_in_band
        assert result.bit_identical
        assert "Adaptive vs static sizing" in result.render()


class TestChaosAdaptiveVariant:
    def test_recovered_collector_replays_the_size_plan(self, tmp_path):
        adaptive = DeploymentSpec(
            total_trips=1_000, seed=13, periods=2, drift=-0.5, adaptive=True
        )
        report = run(
            shard_kill_scenario(
                adaptive, shards=2, wal_path=tmp_path / "collector.wal"
            )
        )
        assert report.sizes_identical is True
        assert report.passed

    def test_static_spec_skips_the_size_check(self, tmp_path):
        static = DeploymentSpec(total_trips=1_000, seed=13)
        report = run(
            shard_kill_scenario(
                static, shards=2, wal_path=tmp_path / "collector.wal"
            )
        )
        assert report.sizes_identical is None
        assert report.passed

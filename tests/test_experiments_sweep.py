"""Tests for the Fig. 4/5 sweep engine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.sweep import run_accuracy_sweep, sweep_parameters

#: A thin 12-point grid spanning the paper's range, for fast tests.
QUICK_GRID = list(range(500, 5_001, 400))


@pytest.fixture(scope="module")
def fig4():
    return run_figure4(n_c_values=QUICK_GRID, seed=40)


@pytest.fixture(scope="module")
def fig5():
    return run_figure5(n_c_values=QUICK_GRID, seed=40)


class TestSweepParameters:
    def test_privacy_constrained(self):
        params = sweep_parameters(10_000, (1, 10, 50), 2)
        assert 10.0 < params["load_factor"] < 17.0
        m = int(params["baseline_m"])
        assert m & (m - 1) == 0
        assert m <= params["load_factor"] * 10_000


class TestRunAccuracySweep:
    def test_invalid_scheme(self):
        with pytest.raises(ConfigurationError):
            run_accuracy_sweep("magic")

    def test_invalid_grid(self):
        with pytest.raises(ConfigurationError):
            run_accuracy_sweep("vlm", n_c_values=[0])
        with pytest.raises(ConfigurationError):
            run_accuracy_sweep("vlm", n_c_values=[20_000])

    def test_series_structure(self, fig5):
        assert set(fig5.series) == {1, 10, 50}
        series = fig5.series[10]
        assert series.n_y == 100_000
        assert series.true_n_c.size == len(QUICK_GRID)
        assert np.all(np.isfinite(series.estimated_n_c))


class TestPaperShape:
    def test_baseline_equal_traffic_accurate(self, fig4):
        assert fig4.series[1].mean_abs_error < 0.10

    def test_baseline_degrades_with_ratio(self, fig4):
        errors = [fig4.series[r].scatter_rmse for r in (1, 10, 50)]
        assert errors[0] < errors[1] < errors[2]
        # "scatter everywhere": RMS deviation at ratio 50 is a large
        # fraction of the plot scale.
        assert errors[2] > 0.5

    def test_vlm_stays_on_the_line(self, fig5):
        for ratio in (1, 10, 50):
            assert fig5.series[ratio].scatter_rmse < 0.10

    def test_vlm_beats_baseline_at_every_ratio(self, fig4, fig5):
        for ratio in (10, 50):
            assert (
                fig5.series[ratio].scatter_rmse
                < fig4.series[ratio].scatter_rmse
            )

    def test_render(self, fig4, fig5):
        assert "scheme of [9]" in fig4.render()
        assert "VLM scheme" in fig5.render()

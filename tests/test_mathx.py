"""Unit tests for repro.utils.mathx (numerically stable primitives)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.mathx import (
    log1m_exp,
    log_pow_one_minus,
    pow_one_minus,
    safe_log,
    stable_ratio_power,
)


class TestPowOneMinus:
    def test_matches_naive_at_small_scale(self):
        assert pow_one_minus(0.1, 3) == pytest.approx(0.9**3, rel=1e-12)

    def test_large_scale_does_not_underflow_to_garbage(self):
        # (1 - 1/2^21)^500000 = exp(-500000/2^21 * (1 + O(1/m)))
        value = pow_one_minus(1.0 / 2**21, 500_000)
        expected = math.exp(500_000 * math.log1p(-1.0 / 2**21))
        assert value == pytest.approx(expected, rel=1e-14)

    def test_vectorized_exponents(self):
        out = pow_one_minus(0.01, np.array([0, 1, 2]))
        assert out == pytest.approx([1.0, 0.99, 0.99**2])

    @given(
        st.floats(min_value=1e-9, max_value=0.5),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_always_in_unit_interval(self, inv, n):
        value = float(pow_one_minus(inv, n))
        assert 0.0 <= value <= 1.0

    def test_log_form_consistency(self):
        assert float(log_pow_one_minus(0.25, 4)) == pytest.approx(
            math.log(0.75**4), rel=1e-12
        )


class TestSafeLog:
    def test_positive_values_unchanged(self):
        assert float(safe_log(math.e)) == pytest.approx(1.0)

    def test_zero_floored(self):
        assert np.isfinite(safe_log(0.0))

    def test_vector(self):
        out = safe_log(np.array([1.0, 0.0, math.e]))
        assert np.isfinite(out).all()


class TestStableRatioPower:
    def test_matches_naive(self):
        naive = ((1 - 0.001) / (1 - 0.002)) ** 100
        assert stable_ratio_power(0.001, 0.002, 100) == pytest.approx(
            naive, rel=1e-12
        )

    def test_extreme_scale(self):
        # The estimator's rho^n_c factor at paper scale.
        m_y, s, n_c = 2**23, 2, 40_000
        value = stable_ratio_power((s - 1) / (s * m_y), 1.0 / m_y, n_c)
        expected = math.exp(
            n_c * (math.log1p(-(s - 1) / (s * m_y)) - math.log1p(-1 / m_y))
        )
        assert value == pytest.approx(expected, rel=1e-13)


class TestLog1mExp:
    @pytest.mark.parametrize("x", [-1e-12, -0.1, -0.5, -1.0, -5.0, -50.0])
    def test_matches_reference(self, x):
        # expm1-based reference stays accurate for tiny |x| where the
        # naive 1 - exp(x) cancels catastrophically.
        expected = math.log(-math.expm1(x))
        assert float(log1m_exp(x)) == pytest.approx(expected, rel=1e-10)

    def test_vectorized(self):
        xs = np.array([-0.01, -1.0, -10.0])
        out = log1m_exp(xs)
        assert out.shape == xs.shape
        assert np.all(out < 0)

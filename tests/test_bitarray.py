"""Unit and property tests for repro.core.bitarray."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.bitarray import BitArray
from repro.errors import ConfigurationError, ReproError, ValidationError


class TestConstruction:
    def test_starts_all_zero(self):
        array = BitArray(16)
        assert array.count_zeros() == 16
        assert array.count_ones() == 0

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            BitArray(0)

    def test_from_bits_copies(self):
        bits = np.zeros(8, dtype=bool)
        array = BitArray.from_bits(bits)
        bits[0] = True
        assert array[0] == 0

    def test_from_indices(self):
        array = BitArray.from_indices(8, [1, 3, 3])
        assert array.count_ones() == 2
        assert array[1] == 1 and array[3] == 1

    def test_bits_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            BitArray(8, np.zeros(4, dtype=bool))


class TestMutation:
    def test_set_bit(self):
        array = BitArray(8)
        array.set_bit(3)
        assert array[3] == 1

    def test_set_bit_out_of_range(self):
        array = BitArray(8)
        with pytest.raises(IndexError):
            array.set_bit(8)
        with pytest.raises(IndexError):
            array.set_bit(-1)

    def test_set_bits_vectorized_and_idempotent(self):
        array = BitArray(32)
        array.set_bits(np.array([0, 5, 5, 31]))
        assert array.count_ones() == 3
        array.set_bits(np.array([5]))
        assert array.count_ones() == 3

    def test_set_bits_empty(self):
        array = BitArray(8)
        array.set_bits(np.array([], dtype=np.int64))
        assert array.count_ones() == 0

    def test_set_bits_bounds(self):
        array = BitArray(8)
        with pytest.raises(IndexError):
            array.set_bits([7, 8])

    def test_set_bits_raises_catchable_validation_error(self):
        """Out-of-range wire input must surface as a library error a
        gateway can catch (not a raw numpy IndexError) — and still be
        an IndexError for callers guarding the historical behaviour."""
        array = BitArray(8)
        with pytest.raises(ValidationError):
            array.set_bits([3, 100])
        with pytest.raises(ReproError):
            array.set_bits([-5])
        with pytest.raises(ValidationError):
            array.set_bit(8)
        assert array.count_ones() == 0

    def test_set_bits_rejects_non_integral(self):
        array = BitArray(8)
        with pytest.raises(ValidationError):
            array.set_bits(np.array([1.5, 2.0]))
        with pytest.raises(ValidationError):
            array.set_bits(["not", "indices"])
        # Exactly-integral floats are accepted (numpy promotion).
        array.set_bits(np.array([1.0, 2.0]))
        assert array.count_ones() == 2

    def test_clear(self):
        array = BitArray.from_indices(8, [0, 1])
        array.clear()
        assert array.count_ones() == 0


class TestStatistics:
    def test_zero_fraction(self):
        array = BitArray.from_indices(10, [0, 1, 2])
        assert array.zero_fraction() == pytest.approx(0.7)

    def test_saturated(self):
        array = BitArray.from_indices(4, [0, 1, 2, 3])
        assert array.is_saturated()
        assert not BitArray(4).is_saturated()


class TestCombination:
    def test_or(self):
        a = BitArray.from_indices(8, [0, 1])
        b = BitArray.from_indices(8, [1, 2])
        c = a | b
        assert c.count_ones() == 3
        # operands untouched
        assert a.count_ones() == 2 and b.count_ones() == 2

    def test_or_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            BitArray(8) | BitArray(16)

    def test_eq(self):
        assert BitArray.from_indices(8, [1]) == BitArray.from_indices(8, [1])
        assert BitArray.from_indices(8, [1]) != BitArray.from_indices(8, [2])
        assert BitArray(8) != BitArray(16)
        assert BitArray(8).__eq__(42) is NotImplemented

    def test_copy_independent(self):
        a = BitArray(8)
        b = a.copy()
        b.set_bit(0)
        assert a[0] == 0


class TestSerialization:
    @given(st.integers(min_value=1, max_value=200), st.data())
    def test_bytes_round_trip(self, size, data):
        indices = data.draw(
            st.lists(st.integers(min_value=0, max_value=size - 1), max_size=size)
        )
        array = BitArray.from_indices(size, indices) if indices else BitArray(size)
        restored = BitArray.from_bytes(array.to_bytes(), size)
        assert restored == array

    def test_byte_length(self):
        assert len(BitArray(12).to_bytes()) == 2
        assert len(BitArray(16).to_bytes()) == 2
        assert len(BitArray(17).to_bytes()) == 3

    def test_from_bytes_rejects_wrong_length(self):
        with pytest.raises(ValidationError):
            BitArray.from_bytes(b"\x00", 12)  # needs 2 bytes
        with pytest.raises(ValidationError):
            BitArray.from_bytes(b"\x00\x00\x00", 12)  # 1 byte too many

    def test_from_bytes_rejects_nonzero_padding(self):
        """A set bit past the logical size means sender and receiver
        disagree about the array length; it must not be silently
        dropped into the zero-bit statistics (regression: previously
        accepted)."""
        # size=12: low 4 bits of the second byte are padding.
        BitArray.from_bytes(b"\xff\xf0", 12)  # all 12 bits set: fine
        with pytest.raises(ValidationError):
            BitArray.from_bytes(b"\xff\xf8", 12)
        with pytest.raises(ValidationError):
            BitArray.from_bytes(b"\x00\x01", 12)
        # size=5: low 3 bits of the single byte are padding.
        with pytest.raises(ValidationError):
            BitArray.from_bytes(b"\x07", 5)
        # Whole-byte sizes have no padding to reject.
        assert BitArray.from_bytes(b"\xff", 8).count_ones() == 8

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=255),
    )
    def test_from_bytes_padding_property(self, size, last_byte):
        """from_bytes accepts a final byte iff its padding bits are 0."""
        nbytes = (size + 7) // 8
        data = b"\x00" * (nbytes - 1) + bytes([last_byte])
        pad = (1 << (8 - size % 8)) - 1 if size % 8 else 0
        if last_byte & pad:
            with pytest.raises(ValidationError):
                BitArray.from_bytes(data, size)
        else:
            restored = BitArray.from_bytes(data, size)
            assert restored.to_bytes() == data


class TestProperties:
    @given(
        st.integers(min_value=1, max_value=512),
        st.lists(st.integers(min_value=0, max_value=10_000), max_size=300),
    )
    def test_ones_plus_zeros_is_size(self, size, raw_indices):
        indices = [i % size for i in raw_indices]
        array = BitArray.from_indices(size, indices) if indices else BitArray(size)
        assert array.count_ones() + array.count_zeros() == array.size
        assert array.count_ones() == len(set(indices))

    @given(st.integers(min_value=1, max_value=256))
    def test_or_identity_and_idempotence(self, size):
        zero = BitArray(size)
        full = BitArray.from_indices(size, list(range(size)))
        assert (zero | zero) == zero
        assert (full | zero) == full
        assert (full | full) == full

"""Tests for load-factor optimization (the Fig. 2 readings)."""

import numpy as np
import pytest

from repro.errors import CalibrationError, ConfigurationError
from repro.privacy.optimizer import (
    max_load_factor_for_privacy,
    optimal_load_factor,
    privacy_curve,
)


class TestPrivacyCurve:
    def test_shape(self):
        factors = np.geomspace(0.1, 50, 40)
        curve = privacy_curve(factors, 2)
        assert curve.shape == factors.shape
        assert np.all((curve >= 0) & (curve <= 1))

    def test_unimodal_over_paper_range(self):
        """Privacy rises to the optimum then falls — the Fig. 2 shape."""
        factors = np.geomspace(0.1, 50, 200)
        curve = privacy_curve(factors, 2)
        peak = int(np.argmax(curve))
        assert 0 < peak < len(curve) - 1
        assert np.all(np.diff(curve[: peak + 1]) > -1e-9)
        assert np.all(np.diff(curve[peak:]) < 1e-9)

    def test_exact_vs_rounded_sizing(self):
        factors = np.array([3.0])
        exact = privacy_curve(factors, 2, exact_sizing=True)
        rounded = privacy_curve(factors, 2, exact_sizing=False)
        # Power-of-two rounding shifts the realized factor but stays in
        # the same privacy ballpark.
        assert abs(float(exact[0]) - float(rounded[0])) < 0.2

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            privacy_curve(np.array([0.0]), 2)
        with pytest.raises(ConfigurationError):
            privacy_curve(np.array([1.0]), 2, n_x=-5)
        with pytest.raises(ConfigurationError):
            privacy_curve(np.array([1.0]), 2, common_fraction=1.5)


class TestPaperReadings:
    """The quantitative claims of Section VI-B, reproduced."""

    def test_optimal_f_in_paper_band_equal_traffic(self):
        for s in (2, 5, 10):
            f_star, p_star = optimal_load_factor(s)
            assert 1.0 < f_star < 5.0  # "approximately from 2 to 4"
            assert p_star > 0.7

    def test_s5_equal_traffic_privacy_075(self):
        _, p_star = optimal_load_factor(5)
        assert p_star == pytest.approx(0.75, abs=0.03)

    def test_s5_skewed_traffic_beats_equal(self):
        p3_10 = float(
            privacy_curve(np.array([3.0]), 5, n_x=1e4, n_y=1e5)[0]
        )
        p3_50 = float(
            privacy_curve(np.array([3.0]), 5, n_x=1e4, n_y=5e5)[0]
        )
        assert p3_10 == pytest.approx(0.89, abs=0.02)
        assert p3_50 == pytest.approx(0.91, abs=0.03)
        assert p3_50 > p3_10 > 0.75

    def test_overload_collapse_at_s2(self):
        p50 = float(privacy_curve(np.array([50.0]), 2)[0])
        assert p50 == pytest.approx(0.2, abs=0.05)

    def test_privacy_half_bound_near_15(self):
        f_max = max_load_factor_for_privacy(0.5, 2)
        assert 10.0 < f_max < 17.0  # paper: "no larger than 15 n_min"


class TestMaxLoadFactor:
    def test_meets_target(self):
        f_max = max_load_factor_for_privacy(0.6, 2)
        p = float(privacy_curve(np.array([f_max]), 2)[0])
        assert p >= 0.6 - 1e-6

    def test_unreachable_target(self):
        with pytest.raises(CalibrationError):
            max_load_factor_for_privacy(0.999999, 2)

    def test_invalid_target(self):
        with pytest.raises(ConfigurationError):
            max_load_factor_for_privacy(1.5, 2)

"""Validation of the closed-form privacy against the empirical tracker."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.privacy.attacker import empirical_privacy
from repro.privacy.formulas import preserved_privacy, preserved_privacy_exact

CASES = [
    (2_000, 2_000, 400, 4_096, 4_096, 2),
    (2_000, 20_000, 400, 4_096, 65_536, 2),
    (1_000, 10_000, 200, 2_048, 32_768, 5),
]


class TestEmpiricalPrivacy:
    @pytest.mark.parametrize("n_x,n_y,n_c,m_x,m_y,s", CASES)
    def test_matches_exact_closed_form(self, n_x, n_y, n_c, m_x, m_y, s):
        closed = float(preserved_privacy_exact(n_x, n_y, n_c, m_x, m_y, s))
        measured = empirical_privacy(
            n_x, n_y, n_c, m_x, m_y, s, trials=30, seed=5
        )
        assert measured.double_set_positions > 200
        # Binomial sampling tolerance ~5 sigma (positions are weakly
        # correlated, so pad the pure-binomial sigma).
        sigma = math.sqrt(
            closed * (1 - closed) / measured.double_set_positions
        )
        assert abs(measured.privacy - closed) < max(5 * sigma, 0.02)

    @pytest.mark.parametrize("n_x,n_y,n_c,m_x,m_y,s", CASES)
    def test_paper_form_is_a_close_approximation(self, n_x, n_y, n_c, m_x, m_y, s):
        """Eq. (43) as printed sits within a few percent of exact at
        the paper's operating points (see module docstring of
        repro.privacy.formulas), and coincides for equal sizes."""
        paper = float(preserved_privacy(n_x, n_y, n_c, m_x, m_y, s))
        exact = float(preserved_privacy_exact(n_x, n_y, n_c, m_x, m_y, s))
        assert abs(paper - exact) < 0.08

    def test_counts_consistent(self):
        result = empirical_privacy(500, 500, 100, 1_024, 1_024, 2, trials=5, seed=3)
        assert 0 <= result.innocent_positions <= result.double_set_positions
        assert result.trials == 5

    def test_no_common_traffic_is_fully_private(self):
        result = empirical_privacy(500, 500, 0, 1_024, 1_024, 2, trials=5, seed=4)
        # Every double-set bit is innocent by construction.
        assert result.privacy == pytest.approx(1.0)

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            empirical_privacy(10, 10, 5, 128, 64, 2)  # m_x > m_y
        with pytest.raises(ConfigurationError):
            empirical_privacy(10, 10, 5, 100, 128, 2)  # not a power of two
        with pytest.raises(ConfigurationError):
            empirical_privacy(10, 10, 50, 64, 128, 2)  # n_c too large

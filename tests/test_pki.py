"""Tests for the simulated PKI."""

import pytest

from repro.errors import AuthenticationError
from repro.vcps.pki import CertificateAuthority


class TestCertificateLifecycle:
    def test_issue_and_verify(self):
        ca = CertificateAuthority(seed=1)
        cert = ca.issue(17)
        ca.trust_anchor().verify(cert)  # does not raise

    def test_subject_fields(self):
        ca = CertificateAuthority("city-dot", seed=1)
        cert = ca.issue(17, not_after=1_000)
        assert cert.rsu_id == 17
        assert cert.issuer == "city-dot"
        assert cert.not_after == 1_000

    def test_expired_rejected(self):
        ca = CertificateAuthority(seed=1)
        cert = ca.issue(17, not_after=100)
        with pytest.raises(AuthenticationError, match="expired"):
            ca.trust_anchor().verify(cert, now=101)
        ca.trust_anchor().verify(cert, now=100)  # boundary still valid

    def test_wrong_issuer_rejected(self):
        trusted = CertificateAuthority("dot", seed=1)
        rogue = CertificateAuthority("rogue", seed=2)
        with pytest.raises(AuthenticationError, match="issued by"):
            trusted.trust_anchor().verify(rogue.issue(17))

    def test_tampered_tag_rejected(self):
        ca = CertificateAuthority(seed=1)
        cert = ca.issue(17)
        forged = type(cert)(
            rsu_id=cert.rsu_id,
            issuer=cert.issuer,
            not_after=cert.not_after,
            tag=bytes(32),
        )
        with pytest.raises(AuthenticationError, match="does not verify"):
            ca.trust_anchor().verify(forged)

    def test_tampered_subject_rejected(self):
        ca = CertificateAuthority(seed=1)
        cert = ca.issue(17)
        forged = type(cert)(
            rsu_id=18, issuer=cert.issuer, not_after=cert.not_after, tag=cert.tag
        )
        with pytest.raises(AuthenticationError):
            ca.trust_anchor().verify(forged)

    def test_same_name_different_secret_rejected(self):
        """An impostor who copies the issuer name but not the secret
        still fails verification."""
        trusted = CertificateAuthority("dot", seed=1)
        impostor = CertificateAuthority("dot", seed=2)
        with pytest.raises(AuthenticationError, match="does not verify"):
            trusted.trust_anchor().verify(impostor.issue(17))

    def test_forge_foreign_helper(self):
        ca = CertificateAuthority(seed=1)
        foreign = ca.forge_foreign(17)
        with pytest.raises(AuthenticationError):
            ca.trust_anchor().verify(foreign)

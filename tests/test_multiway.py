"""Validation of the three-point trajectory estimator."""

import numpy as np
import pytest

from repro.core.encoder import encode_passes
from repro.core.estimator import ZeroFractionPolicy
from repro.core.multiway import (
    estimate_triple,
    log_q_triple_coefficients,
)
from repro.core.parameters import SchemeParameters
from repro.errors import ConfigurationError, EstimationError
from repro.traffic.population import VehicleFleet


def triple_population(counts, m_sizes, s, hash_seed, seed):
    """Encode a population with the 7 exclusive visit categories.

    counts: dict with keys 'x','y','z','xy','xz','yz','xyz'.
    Returns the three reports.
    """
    order = ["x", "y", "z", "xy", "xz", "yz", "xyz"]
    total = sum(counts[k] for k in order)
    fleet = VehicleFleet.random(total, seed=seed)
    spans = {}
    cursor = 0
    for key in order:
        spans[key] = (cursor, cursor + counts[key])
        cursor += counts[key]

    def passes(*keys):
        ids = np.concatenate([fleet.ids[slice(*spans[k])] for k in keys])
        keys_arr = np.concatenate([fleet.keys[slice(*spans[k])] for k in keys])
        return ids, keys_arr

    m_x, m_y, m_z = m_sizes
    params = SchemeParameters(s=s, load_factor=1.0, m_o=m_z, hash_seed=hash_seed)
    rx = encode_passes(*passes("x", "xy", "xz", "xyz"), 1, m_x, params)
    ry = encode_passes(*passes("y", "xy", "yz", "xyz"), 2, m_y, params)
    rz = encode_passes(*passes("z", "xz", "yz", "xyz"), 3, m_z, params)
    return rx, ry, rz


COUNTS = {
    "x": 2_000, "y": 3_000, "z": 5_000,
    "xy": 800, "xz": 700, "yz": 900, "xyz": 1_200,
}
M_SIZES = (1 << 16, 1 << 17, 1 << 18)


class TestCoefficients:
    def test_pairwise_terms_match_eq5_denominator(self):
        from repro.core.estimator import log_collision_ratio

        d_xy, d_xz, d_yz, _ = log_q_triple_coefficients(*M_SIZES, 2)
        assert d_xy == pytest.approx(log_collision_ratio(2, M_SIZES[1]), rel=1e-9)
        assert d_xz == pytest.approx(log_collision_ratio(2, M_SIZES[2]), rel=1e-9)
        assert d_yz == pytest.approx(log_collision_ratio(2, M_SIZES[2]), rel=1e-9)

    def test_triple_coefficient_nonzero(self):
        *_, d_3 = log_q_triple_coefficients(*M_SIZES, 2)
        assert d_3 != 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            log_q_triple_coefficients(1 << 17, 1 << 16, 1 << 18, 2)
        with pytest.raises(ConfigurationError):
            log_q_triple_coefficients(1 << 16, 1 << 17, 1 << 18, 1)


class TestModelConsistency:
    def test_log_linear_model_matches_simulation(self):
        """E[V_t] from the linear model matches the simulated triple-OR
        zero fraction (the core derivation check)."""
        import math

        m_x, m_y, m_z = M_SIZES
        fractions = []
        for trial in range(10):
            rx, ry, rz = triple_population(
                COUNTS, M_SIZES, 2, hash_seed=trial, seed=trial
            )
            from repro.core.unfolding import unfold

            joint = unfold(rx.bits, m_z) | unfold(ry.bits, m_z) | rz.bits
            fractions.append(joint.zero_fraction())
        d_xy, d_xz, d_yz, d_3 = log_q_triple_coefficients(m_x, m_y, m_z, 2)
        n_x = COUNTS["x"] + COUNTS["xy"] + COUNTS["xz"] + COUNTS["xyz"]
        n_y = COUNTS["y"] + COUNTS["xy"] + COUNTS["yz"] + COUNTS["xyz"]
        n_z = COUNTS["z"] + COUNTS["xz"] + COUNTS["yz"] + COUNTS["xyz"]
        n_xy = COUNTS["xy"] + COUNTS["xyz"]
        n_xz = COUNTS["xz"] + COUNTS["xyz"]
        n_yz = COUNTS["yz"] + COUNTS["xyz"]
        log_q = (
            n_x * math.log1p(-1 / m_x)
            + n_y * math.log1p(-1 / m_y)
            + n_z * math.log1p(-1 / m_z)
            + n_xy * d_xy + n_xz * d_xz + n_yz * d_yz
            + COUNTS["xyz"] * d_3
        )
        assert float(np.mean(fractions)) == pytest.approx(
            math.exp(log_q), rel=0.002
        )


class TestEstimateTriple:
    def test_recovers_triple_volume(self):
        estimates = []
        for trial in range(8):
            rx, ry, rz = triple_population(
                COUNTS, M_SIZES, 2, hash_seed=100 + trial, seed=trial
            )
            result = estimate_triple(
                rx, ry, rz, 2, policy=ZeroFractionPolicy.CLAMP
            )
            estimates.append(result.value)
        mean = float(np.mean(estimates))
        assert mean == pytest.approx(COUNTS["xyz"], rel=0.35)

    def test_zero_triple_volume(self):
        counts = dict(COUNTS, xyz=0)
        estimates = []
        for trial in range(8):
            rx, ry, rz = triple_population(
                counts, M_SIZES, 2, hash_seed=200 + trial, seed=trial
            )
            result = estimate_triple(
                rx, ry, rz, 2, policy=ZeroFractionPolicy.CLAMP
            )
            estimates.append(result.value)
        # Unbiased around 0: mean within noise of zero.
        assert abs(float(np.mean(estimates))) < 400

    def test_order_insensitive(self):
        rx, ry, rz = triple_population(COUNTS, M_SIZES, 2, hash_seed=5, seed=5)
        a = estimate_triple(rx, ry, rz, 2)
        b = estimate_triple(rz, rx, ry, 2)
        assert a.value == pytest.approx(b.value)

    def test_distinct_rsus_required(self):
        rx, ry, _ = triple_population(COUNTS, M_SIZES, 2, hash_seed=5, seed=5)
        with pytest.raises(EstimationError):
            estimate_triple(rx, ry, ry, 2)

    def test_metadata(self):
        rx, ry, rz = triple_population(COUNTS, M_SIZES, 2, hash_seed=5, seed=5)
        result = estimate_triple(rx, ry, rz, 2)
        assert result.m_sizes == M_SIZES
        assert len(result.pairwise) == 3
        assert result.clamped_nonnegative >= 0.0

"""Tests for the decoder's unfold memoization."""

import pytest

from repro.core.decoder import CentralDecoder
from repro.core.encoder import encode_passes
from repro.core.estimator import estimate_intersection
from repro.core.parameters import SchemeParameters
from repro.traffic.population import VehicleFleet


@pytest.fixture
def decoder_with_reports():
    params = SchemeParameters(s=2, load_factor=1.0, m_o=1 << 12, hash_seed=4)
    fleet = VehicleFleet.random(1_500, seed=2)
    decoder = CentralDecoder(2)
    sizes = {1: 1 << 8, 2: 1 << 10, 3: 1 << 12}
    spans = {1: (0, 400), 2: (200, 1_000), 3: (600, 1_500)}
    reports = {}
    for rsu_id, (lo, hi) in spans.items():
        report = encode_passes(
            fleet.ids[lo:hi], fleet.keys[lo:hi], rsu_id, sizes[rsu_id], params
        )
        decoder.submit(report)
        reports[rsu_id] = report
    return decoder, reports


class TestUnfoldCache:
    def test_cached_path_matches_reference(self, decoder_with_reports):
        """The memoized pair_estimate must equal the stateless
        estimate_intersection for every pair."""
        decoder, reports = decoder_with_reports
        for a, b in [(1, 2), (1, 3), (2, 3)]:
            cached = decoder.pair_estimate(a, b)
            reference = estimate_intersection(reports[a], reports[b], 2)
            assert cached.value == pytest.approx(reference.value)
            assert (cached.m_x, cached.m_y) == (reference.m_x, reference.m_y)

    def test_cache_populated_and_reused(self, decoder_with_reports):
        decoder, _ = decoder_with_reports
        decoder.pair_estimate(1, 3)
        key = (0, 1, 1 << 12)
        assert key in decoder._unfold_cache
        first = decoder._unfold_cache[key]
        decoder.pair_estimate(1, 3)
        assert decoder._unfold_cache[key] is first  # reused, not rebuilt

    def test_resubmission_invalidates(self, decoder_with_reports):
        decoder, reports = decoder_with_reports
        decoder.pair_estimate(1, 3)
        assert (0, 1, 1 << 12) in decoder._unfold_cache
        decoder.submit(reports[1])
        assert (0, 1, 1 << 12) not in decoder._unfold_cache

    def test_equal_sizes_bypass_cache(self, decoder_with_reports):
        decoder, reports = decoder_with_reports
        decoder.submit(
            type(reports[3])(
                rsu_id=4, counter=reports[3].counter,
                bits=reports[3].bits.copy(), period=0,
            )
        )
        decoder.pair_estimate(3, 4)
        assert all(key[2] != (1 << 12) or key[1] in (1, 2)
                   for key in decoder._unfold_cache)

    def test_all_pairs_uses_cache(self, decoder_with_reports):
        decoder, _ = decoder_with_reports
        matrix = decoder.all_pairs()
        assert len(matrix) == 3
        # Two distinct smaller arrays each unfolded to their partners.
        assert len(decoder._unfold_cache) >= 2


class TestMemoBound:
    def _decoder(self, capacity, rsu_count=6):
        from repro.core.bitarray import BitArray
        from repro.core.reports import RsuReport

        decoder = CentralDecoder(2, memo_capacity=capacity, policy="clamp")
        for rsu_id in range(1, rsu_count + 1):
            size = 1 << 6 if rsu_id < rsu_count else 1 << 10
            decoder.submit(
                RsuReport(
                    rsu_id,
                    size // 4,
                    BitArray.from_indices(size, range(0, size, 4)),
                )
            )
        return decoder

    def test_capacity_validated(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CentralDecoder(2, memo_capacity=0)

    def test_memo_never_exceeds_capacity(self):
        decoder = self._decoder(capacity=2)
        decoder.all_pairs()
        assert len(decoder._unfold_cache) <= 2

    def test_evictions_counted(self):
        from repro.obs import get_registry

        decoder = self._decoder(capacity=2)
        counter = get_registry().counter("core.decoder_memo_evictions_total")
        before = counter.value
        # Five small arrays each unfold to 1<<10 when paired with the
        # big one: 5 distinct memo entries through a capacity-2 LRU.
        decoder.all_pairs()
        assert counter.value >= before + 3

    def test_lru_keeps_most_recent(self):
        decoder = self._decoder(capacity=2)
        decoder.pair_estimate(1, 6)
        decoder.pair_estimate(2, 6)
        decoder.pair_estimate(3, 6)  # evicts RSU 1's entry
        keys = list(decoder._unfold_cache)
        assert (0, 1, 1 << 10) not in keys
        assert (0, 2, 1 << 10) in keys
        assert (0, 3, 1 << 10) in keys
        # Re-touch RSU 2's entry, then add another: RSU 3's is evicted.
        decoder.pair_estimate(2, 6)
        decoder.pair_estimate(4, 6)
        keys = list(decoder._unfold_cache)
        assert (0, 2, 1 << 10) in keys
        assert (0, 3, 1 << 10) not in keys

    def test_eviction_does_not_change_results(self):
        bounded = self._decoder(capacity=1)
        unbounded = self._decoder(capacity=1000)
        assert bounded.all_pairs() == unbounded.all_pairs()

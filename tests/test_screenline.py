"""Tests for screenline analysis."""

import pytest

from repro.apps.link_flows import LinkFlowStudy
from repro.apps.screenline import measure_screenline
from repro.errors import EstimationError, NetworkDataError


@pytest.fixture
def flows():
    return LinkFlowStudy(
        flows={(1, 2): 1_000.0, (3, 4): 2_000.0, (5, 6): 500.0}
    )


class TestMeasureScreenline:
    def test_totals(self, flows):
        study = measure_screenline(flows, [(1, 2), (3, 4)], name="river")
        assert study.measured_total() == pytest.approx(3_000.0)
        assert set(study.crossings) == {(1, 2), (3, 4)}

    def test_key_normalization(self, flows):
        study = measure_screenline(flows, [(2, 1)])
        assert (1, 2) in study.crossings

    def test_error_vs_truth(self, flows):
        study = measure_screenline(
            flows, [(1, 2), (3, 4)], truth={(1, 2): 1_100, (3, 4): 2_100}
        )
        assert study.truth_total == 3_200
        assert study.error() == pytest.approx(200 / 3_200)

    def test_error_requires_truth(self, flows):
        study = measure_screenline(flows, [(1, 2)])
        with pytest.raises(EstimationError):
            study.error()

    def test_unmeasured_street(self, flows):
        with pytest.raises(NetworkDataError):
            measure_screenline(flows, [(7, 8)])

    def test_empty_screenline(self, flows):
        with pytest.raises(NetworkDataError):
            measure_screenline(flows, [])

    def test_missing_truth_street(self, flows):
        with pytest.raises(NetworkDataError):
            measure_screenline(flows, [(1, 2)], truth={(3, 4): 1})

    def test_render(self, flows):
        text = measure_screenline(
            flows, [(1, 2)], name="cordon", truth={(1, 2): 900}
        ).render()
        assert "Screenline 'cordon'" in text
        assert "error" in text

    def test_end_to_end_on_network(self):
        """Measured screenline error stays small on a real pipeline."""
        from repro.apps.link_flows import measure_link_flows
        from repro.core.estimator import ZeroFractionPolicy
        from repro.core.scheme import VlmScheme
        from repro.roadnet.volumes import pair_common_volumes
        from repro.traffic.network_workload import sioux_falls_workload

        workload = sioux_falls_workload(total_trips=40_000, seed=19)
        scheme = VlmScheme(
            workload.volumes(), s=2, load_factor=10.0, hash_seed=4,
            policy=ZeroFractionPolicy.CLAMP,
        )
        scheme.run_period(workload.passes())
        truth = pair_common_volumes(workload.plan)
        flows = measure_link_flows(scheme.decoder, workload.network)
        # A north-south cut through the middle of Sioux Falls.
        cut = [(10, 15), (11, 14), (10, 17), (12, 13)]
        study = measure_screenline(flows, cut, name="midtown", truth=truth)
        assert study.error() < 0.10

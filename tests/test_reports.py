"""Tests for the RSU report container and wire round trip."""

import pytest

from repro.core.bitarray import BitArray
from repro.core.reports import RsuReport
from repro.errors import ConfigurationError


class TestRsuReport:
    def test_properties(self):
        report = RsuReport(rsu_id=3, counter=10, bits=BitArray.from_indices(8, [0, 1]))
        assert report.array_size == 8
        assert report.zero_fraction == pytest.approx(0.75)
        assert report.fill_load == pytest.approx(0.8)

    def test_idle_rsu_fill_load(self):
        report = RsuReport(rsu_id=3, counter=0, bits=BitArray(8))
        assert report.fill_load == float("inf")

    def test_negative_counter_rejected(self):
        with pytest.raises(ConfigurationError):
            RsuReport(rsu_id=3, counter=-1, bits=BitArray(8))

    def test_wire_round_trip(self):
        report = RsuReport(
            rsu_id=7, counter=42, bits=BitArray.from_indices(16, [3, 9]), period=2
        )
        restored = RsuReport.from_wire(report.to_wire())
        assert restored.rsu_id == 7
        assert restored.counter == 42
        assert restored.period == 2
        assert restored.bits == report.bits

    def test_wire_default_period(self):
        payload = RsuReport(rsu_id=1, counter=0, bits=BitArray(8)).to_wire()
        del payload["period"]
        assert RsuReport.from_wire(payload).period == 0

    def test_malformed_payload(self):
        with pytest.raises(ConfigurationError):
            RsuReport.from_wire({"rsu_id": 1})
        with pytest.raises(ConfigurationError):
            RsuReport.from_wire(
                {"rsu_id": 1, "counter": 1, "period": 0, "size": 8, "bits": "zz"}
            )

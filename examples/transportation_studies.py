#!/usr/bin/env python
"""The three transportation studies the paper's introduction motivates,
executed on privacy-preserving measurements.

"[Point-to-point volumes] provide essential input to a variety of
transportation studies such as estimating traffic link flow
distribution for investment plan, calculating road exposure rates for
safety analysis, and characterizing turning movements at intersections
for signal timing determination."  — Section I

This example runs a Sioux Falls day through the VLM scheme and then
performs all three studies purely from the measured (masked) data,
comparing against routed ground truth.

Run:  python examples/transportation_studies.py
"""

from repro.apps import (
    measure_exposure,
    measure_link_flows,
    measure_turning_movements,
)
from repro.core.estimator import ZeroFractionPolicy
from repro.core.scheme import VlmScheme
from repro.roadnet.volumes import pair_common_volumes
from repro.traffic.network_workload import sioux_falls_workload

# --- Measure a day of Sioux Falls traffic ------------------------------
workload = sioux_falls_workload(total_trips=80_000, seed=17)
scheme = VlmScheme(
    workload.volumes(), s=2, load_factor=10.0, hash_seed=9,
    policy=ZeroFractionPolicy.CLAMP,
)
scheme.run_period(workload.passes())
truth = pair_common_volumes(workload.plan)
print(
    f"measured {workload.plan.trips.total_trips:,} vehicles across "
    f"{workload.network.num_nodes} instrumented intersections\n"
)

# --- Study 1: link flow distribution (investment planning) -------------
link_study = measure_link_flows(scheme.decoder, workload.network, truth=truth)
print(link_study.render(count=8))
print(f"mean |error| over streets: {100 * link_study.mean_abs_error():.1f}%\n")

# --- Study 2: road exposure (safety analysis) --------------------------
# Street lengths derived from free-flow times at 50 km/h (0.01h units).
lengths = {}
for arc in workload.network.arcs():
    key = (min(arc.tail, arc.head), max(arc.tail, arc.head))
    lengths[key] = arc.free_flow_time * 0.5  # km
# A synthetic incident log for the period:
incidents = {(9, 10): 3, (10, 16): 5, (15, 22): 1}
exposure_study = measure_exposure(link_study, lengths, incidents=incidents)
print(exposure_study.render(count=8))
print()

# --- Study 3: turning movements (signal timing) -------------------------
# Node 10 is the heaviest intersection — where signal timing matters most.
turn_study = measure_turning_movements(
    scheme.decoder, workload.network, 10, truth_plan=workload.plan
)
print(turn_study.render())
dominant = turn_study.dominant_movement()
print(
    f"\nsignal plan should favour the {dominant[0]} - 10 - {dominant[1]} "
    f"movement ({100 * turn_study.shares()[dominant]:.0f}% of turning traffic)"
)

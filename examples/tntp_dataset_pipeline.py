#!/usr/bin/env python
"""Dataset interchange: run the pipeline from TNTP files.

The transportation community exchanges networks and trip tables as
``.tntp`` files (the TransportationNetworks repository format — the
home of the original LeBlanc Sioux Falls dataset the paper cites).
This example round-trips that format:

1. export this library's Sioux Falls network and a synthetic trip
   table to ``.tntp`` files;
2. load them back exactly as a user with the real dataset files would;
3. run congestion-aware (BPR + MSA) equilibrium assignment on the
   loaded network;
4. measure the heaviest point-to-point flow on the equilibrium routes.

Run:  python examples/tntp_dataset_pipeline.py
"""

import tempfile
from pathlib import Path

from repro.core.estimator import ZeroFractionPolicy
from repro.core.scheme import VlmScheme
from repro.roadnet.congestion import assign_equilibrium
from repro.roadnet.gravity import gravity_trip_table
from repro.roadnet.sioux_falls import sioux_falls_network
from repro.roadnet.tntp import load_network, load_trips, write_network, write_trips
from repro.roadnet.volumes import (
    TrafficAssignment,
    node_volumes,
    pair_common_volumes,
)

workdir = Path(tempfile.mkdtemp(prefix="repro-tntp-"))

# --- 1. export ---------------------------------------------------------
network = sioux_falls_network(capacity=12_000.0)
trips = gravity_trip_table(network, total_trips=120_000)
net_path = workdir / "SiouxFalls_net.tntp"
trips_path = workdir / "SiouxFalls_trips.tntp"
net_path.write_text(write_network(network))
trips_path.write_text(write_trips(trips))
print(f"exported {net_path.name} ({net_path.stat().st_size:,} bytes) and "
      f"{trips_path.name} ({trips_path.stat().st_size:,} bytes)")

# --- 2. load back ------------------------------------------------------
loaded_net = load_network(net_path)
loaded_trips = load_trips(trips_path)
print(f"loaded: {loaded_net.num_nodes} nodes, {loaded_net.num_arcs} arcs, "
      f"{loaded_trips.total_trips:,} trips/day")

# --- 3. equilibrium assignment on the loaded data ----------------------
equilibrium = assign_equilibrium(loaded_net, loaded_trips, max_iterations=40)
print(f"MSA equilibrium: {equilibrium.iterations} iterations, relative gap "
      f"{equilibrium.relative_gap:.2e}, total travel time "
      f"{equilibrium.total_travel_time():,.0f} veh-min")

# --- 4. measure on the congestion-consistent routes --------------------
assignment = TrafficAssignment.materialize(equilibrium.plan, seed=23)
volumes = node_volumes(equilibrium.plan)
truth = pair_common_volumes(equilibrium.plan)
scheme = VlmScheme(
    volumes, s=2, load_factor=10.0, hash_seed=8,
    policy=ZeroFractionPolicy.CLAMP,
)
scheme.run_period(
    {node: assignment.passes_at(node) for node in loaded_net.nodes}
)
pair = max(truth, key=truth.get)
estimate = scheme.decoder.pair_estimate(*pair)
print(
    f"heaviest pair {pair}: true n_c = {truth[pair]:,}, measured "
    f"{estimate.value:,.0f} "
    f"(error {100 * estimate.error_ratio(truth[pair]):.1f}%)"
)

#!/usr/bin/env python
"""Robustness extensions: lossy radios and multi-period averaging.

Two questions a deployment engineer asks that the paper leaves open:

1. What does DSRC frame loss do to the measurements?  (Answer: query
   loss is absorbed by re-broadcast; response loss shrinks the observed
   population but never desynchronizes counter and bit array.)
2. How fast does accuracy improve when several measurement periods of
   a stable flow are combined?  (Answer: the classic 1/sqrt(P).)

Run:  python examples/robustness_study.py
"""

from repro.experiments.multiperiod import run_multiperiod
from repro.utils.tables import AsciiTable
from repro.vcps import LossyChannel, VcpsSimulation

# --- 1. channel loss sensitivity ---------------------------------------
print("Channel-loss sensitivity (600 vehicles passing both RSUs)\n")
table = AsciiTable(
    ["query loss", "response loss", "observed n_x", "measured n_c^"],
)
for query_loss, response_loss in [(0.0, 0.0), (0.3, 0.0), (0.0, 0.2), (0.3, 0.2)]:
    channel = LossyChannel(
        query_loss=query_loss, response_loss=response_loss, seed=11
    )
    sim = VcpsSimulation(
        {1: 600, 2: 600}, s=2, load_factor=8.0, seed=4,
        channel=channel, query_attempts=3,
    )
    for vid in range(600):
        sim.drive(vid, [1, 2])
    sim.close_period()
    estimate = sim.server.point_to_point(1, 2)
    table.add_row(
        [
            f"{query_loss:.0%}",
            f"{response_loss:.0%}",
            estimate.n_x,
            round(estimate.value, 1),
        ]
    )
print(table.render())
print(
    "-> with 3 query attempts, 30% query loss costs <3% of vehicles;\n"
    "   response loss removes vehicles but the estimate tracks the\n"
    "   observed (reduced) overlap consistently.\n"
)

# --- 2. multi-period aggregation ----------------------------------------
result = run_multiperiod(
    n_x=10_000, n_y=100_000, n_c=2_000,
    period_counts=(1, 2, 4, 8), trials=6, seed=31,
)
print(result.render())
print("-> combining a week of periods cuts the error roughly as 1/sqrt(P).")

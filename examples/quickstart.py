#!/usr/bin/env python
"""Quickstart: measure point-to-point traffic between two RSUs.

Builds a synthetic population (10,000 vehicles past a light-traffic
RSU, 100,000 past a heavy one, 3,000 passing both), runs the VLM
scheme's online coding and offline decoding, and compares the estimate
with the ground truth — the whole public API in ~30 lines.

Run:  python examples/quickstart.py
"""

from repro import VlmScheme, make_pair_population

# Ground truth: a light-traffic and a heavy-traffic RSU with 3,000
# common vehicles (the quantity the scheme estimates).
population = make_pair_population(
    n_x=10_000, n_y=100_000, n_c=3_000, rsu_x=1, rsu_y=2, seed=42
)

# The scheme sizes each RSU's bit array from its (here: exact)
# historical volume at a common load factor — the paper's key idea.
scheme = VlmScheme(
    population.volumes(),  # {rsu_id: historical volume}
    s=2,                   # logical bit array size
    load_factor=8.0,       # global load factor f̄
    hash_seed=7,
)
print(f"array sizes: m_x = {scheme.array_size(1):,}, m_y = {scheme.array_size(2):,}")

# Online coding phase: every vehicle reports one masked bit index.
reports = scheme.run_period(population.passes())
for rsu_id, report in sorted(reports.items()):
    print(
        f"RSU {rsu_id}: counted n = {report.counter:,}, "
        f"zero fraction V = {report.zero_fraction:.4f}"
    )

# Offline decoding phase: unfold, OR, count zeros, apply the MLE.
estimate = scheme.decoder.pair_estimate(1, 2)
print(f"\ntrue point-to-point volume  n_c  = {population.n_c:,}")
print(f"estimated volume            n_c^ = {estimate.value:,.1f}")
print(f"error ratio                 r    = {100 * estimate.error_ratio(population.n_c):.2f}%")

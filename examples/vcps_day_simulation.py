#!/usr/bin/env python
"""Agent-level VCPS day: the full protocol, message by message.

Where the other examples drive the vectorized encoders, this one runs
the protocol-faithful agent simulation: a certificate authority
certifies RSUs, vehicles verify certificates before answering, every
response carries a one-time MAC, RSUs report per measurement period,
the server updates volume history and republishes array sizes — the
feedback loop of paper Section IV-C — across two simulated days.

Run:  python examples/vcps_day_simulation.py
"""

from repro.errors import AuthenticationError
from repro.vcps import VcpsSimulation
from repro.vcps.messages import Query
from repro.vcps.pki import CertificateAuthority

# Three intersections with very different historical volumes.
HISTORY = {101: 400, 102: 2_000, 103: 900}

sim = VcpsSimulation(HISTORY, s=2, load_factor=4.0, seed=13)
print("initial array sizes:",
      {rid: rsu.array_size for rid, rsu in sorted(sim.rsus.items())})

# --- Day 1: drive a fleet over three route classes ---------------------
routes = {}
vid = 0
for _ in range(300):   # commuters passing 101 then 102
    routes[vid] = [101, 102]; vid += 1
for _ in range(150):   # crosstown traffic passing all three
    routes[vid] = [101, 103, 102]; vid += 1
for _ in range(1_200):  # local traffic around the hub only
    routes[vid] = [102]; vid += 1
for _ in range(500):   # traffic between 103 and 102
    routes[vid] = [103, 102]; vid += 1
recorded = sim.drive_all(routes)
print(f"day 1: {recorded:,} responses recorded")

# An impostor RSU with a rogue certificate gets no answers:
rogue_ca = CertificateAuthority("rogue-authority", seed=99)
impostor = Query(rsu_id=101, certificate=rogue_ca.issue(101), array_size=1024)
try:
    sim.vehicle(0).handle_query(impostor)
    print("BUG: impostor was answered")
except AuthenticationError as exc:
    print(f"impostor rejected: {exc}")

# --- Close the period: reports flow to the central server --------------
sim.close_period()
true_common = {(101, 102): 450, (101, 103): 150, (102, 103): 650}
for (a, b), truth in sorted(true_common.items()):
    est = sim.server.point_to_point(a, b, period=0)
    print(
        f"pair ({a}, {b}): true n_c = {truth:4d}, measured n_c^ = "
        f"{est.value:7.1f} (error {100 * abs(est.value - truth) / truth:.1f}%)"
    )
print("integrity anomalies flagged:", len(sim.server.anomalies))

# --- Day 2: history has been updated; sizes follow the traffic ---------
new_sizes = sim.apply_resizing()
print("\nafter history update, next-period sizes:", dict(sorted(new_sizes.items())))
print("updated history:",
      {k: round(v) for k, v in sorted(sim.server.history.known_rsus().items())})

#!/usr/bin/env python
"""Privacy tuning: choose the global load factor for a deployment.

A transportation authority planning a VLM deployment must pick one
global load factor f̄.  This example walks the decision the paper's
Section VI supports:

1. chart preserved privacy against the load factor for several s;
2. locate the optimal f* and the largest f meeting a privacy floor;
3. show the *unbalanced load factor* failure of a fixed-length design
   (why [9] cannot protect a light-traffic RSU next to a heavy one);
4. print the resulting per-RSU array sizes for a sample deployment.

Run:  python examples/privacy_tuning.py
"""

import numpy as np

from repro.core.sizing import StaticSizing
from repro.privacy import optimal_load_factor, preserved_privacy
from repro.privacy.optimizer import max_load_factor_for_privacy, privacy_curve
from repro.utils.tables import AsciiTable

# --- 1. privacy vs load factor ----------------------------------------
factors = np.array([0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0])
table = AsciiTable(
    ["f"] + [f"p (s={s})" for s in (2, 5, 10)],
    title="Preserved privacy vs load factor (equal-traffic RSUs, n = 10,000)",
)
for f in factors:
    row = [f]
    for s in (2, 5, 10):
        row.append(float(privacy_curve(np.array([f]), s)[0]))
    table.add_row(row)
print(table.render(), "\n")

# --- 2. the interesting operating points ------------------------------
for s in (2, 5, 10):
    f_star, p_star = optimal_load_factor(s)
    f_max = max_load_factor_for_privacy(0.5, s)
    print(
        f"s={s:2d}: optimal f* = {f_star:5.2f} (privacy {p_star:.3f}); "
        f"largest f with privacy >= 0.5: {f_max:.1f}"
    )
print()

# --- 3. the unbalanced load factor problem of [9] ----------------------
# A fixed m sized for a 500k-vehicle hub (f=2 there) pushes a 20k RSU
# to f=50 — and its cars' privacy collapses (paper Fig. 2, plot 1).
n_heavy, n_light = 500_000, 20_000
m_fixed = 2 * n_heavy
for label, n in (("heavy hub", n_heavy), ("light RSU", n_light)):
    f_effective = m_fixed / n
    p = float(
        preserved_privacy(n, n, 0.1 * n, m_fixed, m_fixed, 2)
    )
    print(
        f"fixed m = {m_fixed:,}: {label} (n={n:,}) runs at f = "
        f"{f_effective:.0f}, privacy = {p:.2f}"
    )
print("-> the fixed-length scheme must shrink m for everyone, hurting accuracy.\n")

# --- 4. a full pre-rollout deployment plan ------------------------------
from repro.analysis import plan_deployment

plan = plan_deployment(
    {"hub": 500_000.0, "arterial": 120_000.0, "collector": 20_000.0,
     "local": 2_500.0},
    s=2,
    privacy_floor=0.5,
)
print(plan.render())

#!/usr/bin/env python
"""Sioux Falls network study: a full transportation-engineering run.

The paper's motivating application — measure the point-to-point
traffic volume between arbitrary locations of a city road network —
executed end to end on the classic Sioux Falls network:

1. synthesize a daily trip table (gravity model) and route it;
2. run the VLM online coding at all 24 RSUs;
3. decode the full 24x24 point-to-point traffic matrix at the server;
4. compare the heaviest OD pairs against the routed ground truth and
   against the fixed-length baseline of [9].

Run:  python examples/sioux_falls_study.py
"""

from repro.baseline import FixedLengthScheme, fixed_array_size_for_privacy
from repro.core.estimator import ZeroFractionPolicy
from repro.core.scheme import VlmScheme
from repro.traffic.network_workload import sioux_falls_workload
from repro.utils.tables import AsciiTable

# Keep the example quick: a scaled-down day (the experiment harness
# runs the full 451k-vehicle day; see `python -m repro.cli table1`).
TOTAL_TRIPS = 60_000

workload = sioux_falls_workload(total_trips=TOTAL_TRIPS, seed=11)
volumes = workload.volumes()
truth = workload.common_volumes()
print(
    f"network: {workload.network.name} "
    f"({workload.network.num_nodes} nodes, {workload.network.num_arcs} arcs), "
    f"{workload.plan.trips.total_trips:,} vehicles/day"
)
heaviest = max(volumes, key=volumes.get)
print(f"heaviest node: {heaviest} with {volumes[heaviest]:,} vehicles/day\n")

# --- VLM scheme over all 24 RSUs -------------------------------------
scheme = VlmScheme(
    volumes, s=2, load_factor=8.0, hash_seed=3, policy=ZeroFractionPolicy.CLAMP
)
passes = workload.passes()
scheme.run_period(passes)

# --- Fixed-length baseline for comparison ----------------------------
m_fixed = fixed_array_size_for_privacy(volumes.values(), s=2)
baseline = FixedLengthScheme(m_fixed, s=2, hash_seed=3)
baseline.run_period(passes)

# --- Compare the ten heaviest point-to-point pairs --------------------
top_pairs = sorted(truth, key=truth.get, reverse=True)[:10]
table = AsciiTable(
    ["pair", "true n_c", "VLM n_c^", "VLM err %", "[9] n_c^", "[9] err %"],
    title="Heaviest point-to-point flows, VLM vs fixed-length baseline",
)
for a, b in top_pairs:
    true_nc = truth[(a, b)]
    vlm = scheme.decoder.pair_estimate(a, b)
    base = baseline.decoder.pair_estimate(a, b)
    table.add_row(
        [
            f"({a}, {b})",
            true_nc,
            vlm.value,
            100 * vlm.error_ratio(true_nc),
            base.value,
            100 * base.error_ratio(true_nc),
        ]
    )
print(table.render())

# --- Bonus: a three-point corridor flow (extension) --------------------
# How many vehicles traverse the 9 -> 10 -> 16 corridor area (pass all
# three intersections)?  The triple estimator generalizes Eq. (5).
from repro.core.multiway import estimate_triple
from repro.core.estimator import ZeroFractionPolicy as _ZFP

corridor = (9, 10, 16)
triple = estimate_triple(
    *(scheme.decoder.report_for(node) for node in corridor),
    scheme.s,
    policy=_ZFP.CLAMP,
)
true_triple = sum(
    trips
    for pair, trips in workload.plan.trips.pairs()
    if all(node in workload.plan.routes[pair] for node in corridor)
)
print(
    f"\nthree-point corridor {corridor}: true {true_triple:,}, "
    f"measured {triple.clamped_nonnegative:,.0f}\n"
)

# --- Aggregate accuracy over every measurable pair --------------------
for name, decoder in (("VLM", scheme.decoder), ("baseline [9]", baseline.decoder)):
    errors = []
    for (a, b), true_nc in truth.items():
        if true_nc < 200:  # skip pairs too small to measure meaningfully
            continue
        est = decoder.pair_estimate(a, b)
        errors.append(abs(est.value - true_nc) / true_nc)
    mean_err = 100 * sum(errors) / len(errors)
    print(f"{name}: mean |error| over {len(errors)} pairs with n_c >= 200: {mean_err:.1f}%")
